// Tests for the memory-system simulator: cache behaviour, address-map
// bijectivity, DRAM timing/energy invariants, MC registers, and the
// front-end's stat/energy accounting.
#include <gtest/gtest.h>

#include <utility>

#include "ecc/scheme.hpp"
#include "memsim/address_map.hpp"
#include "memsim/cache.hpp"
#include "memsim/config.hpp"
#include "memsim/dram.hpp"
#include "memsim/memory_controller.hpp"
#include "memsim/system.hpp"
#include "obs/metrics.hpp"

namespace abftecc::memsim {
namespace {

CacheConfig small_cache() { return CacheConfig{1024, 2, 64, 1}; }  // 8 sets

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_TRUE(c.access(32, false).hit);  // same line
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_cache());  // 2 ways, 8 sets; lines 0, 512, 1024 share set 0
  c.access(0, false);
  c.access(512, false);
  c.access(0, false);        // 0 now MRU
  auto r = c.access(1024, false);  // evicts 512
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line_addr, 512u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(512));
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(small_cache());
  c.access(0, true);  // dirty
  c.access(512, false);
  auto r = c.access(1024, false);  // evicts 0 (LRU)
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line_addr, 0u);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(small_cache());
  c.access(64, false);
  c.access(64, true);
  EXPECT_TRUE(c.invalidate(64));  // returns dirtiness
}

TEST(Cache, InvalidateMissingLineReturnsFalse) {
  Cache c(small_cache());
  EXPECT_FALSE(c.invalidate(64));
}

TEST(Cache, MissRateComputed) {
  Cache c(small_cache());
  c.access(0, false);
  c.access(0, false);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

class AddressMapRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressMapRoundTrip, ComposeInvertsDecompose) {
  DramOrganization org;
  AddressMap map(org);
  const std::uint64_t addr = GetParam() & ~63ull;
  EXPECT_EQ(map.compose(map.decompose(addr)), addr);
}

INSTANTIATE_TEST_SUITE_P(Addrs, AddressMapRoundTrip,
                         ::testing::Values(0ull, 64ull, 4096ull, 123456ull * 64,
                                           (1ull << 30) + 640,
                                           (1ull << 33) - 64));

TEST(AddressMap, ConsecutiveLinesRotateChannels) {
  DramOrganization org;
  AddressMap map(org);
  const auto a0 = map.decompose(0);
  const auto a1 = map.decompose(64);
  EXPECT_EQ(a1.channel, (a0.channel + 1) % org.channels);
}

TEST(AddressMap, SameBankStreamsStayInRow) {
  DramOrganization org;
  AddressMap map(org);
  // Lines on the same (channel, bank) are channel*banks lines apart.
  const std::uint64_t stride = 64ull * org.channels * org.banks_per_rank;
  const auto a = map.decompose(0);
  const auto b = map.decompose(stride);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(b.column, a.column + 1);
}

SystemConfig test_config() {
  SystemConfig c = SystemConfig::scaled(8);
  return c;
}

TEST(Dram, RowHitIsFasterThanMiss) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  const auto shape = shape_for(ecc::Scheme::kSecded);
  const auto da = map.decompose(0);
  const auto first = dram.issue(da, false, shape, 0);
  EXPECT_FALSE(first.row_hit);
  auto da2 = da;
  da2.column += 1;
  const auto second = dram.issue(da2, false, shape, first.completion);
  EXPECT_TRUE(second.row_hit);
  EXPECT_LT(second.completion - first.completion,
            first.completion - 0);  // hit latency < miss latency
}

TEST(Dram, RowMissCostsActivationEnergy) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  const auto shape = shape_for(ecc::Scheme::kSecded);
  const auto da = map.decompose(0);
  const auto miss = dram.issue(da, false, shape, 0);
  auto da2 = da;
  da2.column += 1;
  const auto hit = dram.issue(da2, false, shape, miss.completion);
  EXPECT_GT(miss.energy_pj, hit.energy_pj);
}

TEST(Dram, ChipkillCostsMoreEnergyPerMiss) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem d1(cfg, map), d2(cfg, map);
  const auto da = map.decompose(0);
  const auto sd = d1.issue(da, false, shape_for(ecc::Scheme::kSecded), 0);
  const auto ck = d2.issue(da, false, shape_for(ecc::Scheme::kChipkill), 0);
  EXPECT_GT(ck.energy_pj, sd.energy_pj);
}

TEST(Dram, ChipkillOccupiesBothPairedChannels) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  const auto da0 = map.decompose(0);    // channel 0
  const auto da1 = map.decompose(64);   // channel 1
  // Chipkill access on channel 0 locks channel 1 too.
  const auto ck = dram.issue(da0, false, shape_for(ecc::Scheme::kChipkill), 0);
  const auto after =
      dram.issue(da1, false, shape_for(ecc::Scheme::kSecded), 0);
  EXPECT_GE(after.start, ck.completion);  // had to wait for the pair
}

TEST(Dram, IndependentChannelsOverlapWithoutChipkill) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  const auto da0 = map.decompose(0);
  const auto da1 = map.decompose(64);
  dram.issue(da0, false, shape_for(ecc::Scheme::kSecded), 0);
  const auto b = dram.issue(da1, false, shape_for(ecc::Scheme::kSecded), 0);
  EXPECT_EQ(b.start, 0u);  // different channel: no wait
}

TEST(Dram, ClosedPagePolicyNeverRowHits) {
  SystemConfig cfg = test_config();
  cfg.row_policy = RowBufferPolicy::kClosedPage;
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  const auto shape = shape_for(ecc::Scheme::kNone);
  auto da = map.decompose(0);
  const auto r1 = dram.issue(da, false, shape, 0);
  da.column += 1;
  const auto r2 = dram.issue(da, false, shape, r1.completion);
  EXPECT_FALSE(r2.row_hit);
  EXPECT_EQ(dram.stats().row_hits, 0u);
}

TEST(Dram, StandbyEnergyScalesWithTime) {
  SystemConfig cfg = test_config();
  AddressMap map(cfg.org);
  DramSystem dram(cfg, map);
  EXPECT_NEAR(dram.standby_energy_pj(2.0), 2.0 * dram.standby_energy_pj(1.0),
              1e-3);
  EXPECT_GT(dram.standby_energy_pj(1.0), 0.0);
}

// --- Memory controller -------------------------------------------------------

TEST(MemoryController, DefaultSchemeAppliesOutsideRanges) {
  MemoryController mc(ecc::Scheme::kChipkill);
  EXPECT_EQ(mc.scheme_for(0x1000), ecc::Scheme::kChipkill);
}

TEST(MemoryController, RangeLookupAndClear) {
  MemoryController mc(ecc::Scheme::kChipkill);
  ASSERT_TRUE(mc.set_range({0x10000, 0x20000, ecc::Scheme::kNone}));
  EXPECT_EQ(mc.scheme_for(0x10000), ecc::Scheme::kNone);
  EXPECT_EQ(mc.scheme_for(0x1FFFF), ecc::Scheme::kNone);
  EXPECT_EQ(mc.scheme_for(0x20000), ecc::Scheme::kChipkill);
  EXPECT_TRUE(mc.clear_range(0x10000));
  EXPECT_EQ(mc.scheme_for(0x10000), ecc::Scheme::kChipkill);
}

TEST(MemoryController, OnlyEightRanges) {
  MemoryController mc;
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(mc.set_range({static_cast<std::uint64_t>(i) * 0x1000,
                              static_cast<std::uint64_t>(i) * 0x1000 + 0x800,
                              ecc::Scheme::kSecded}));
  EXPECT_FALSE(mc.set_range({0x100000, 0x101000, ecc::Scheme::kSecded}));
  EXPECT_EQ(mc.ranges_in_use(), 8u);
  // Freeing one slot makes room again.
  EXPECT_TRUE(mc.clear_range(0));
  EXPECT_TRUE(mc.set_range({0x100000, 0x101000, ecc::Scheme::kSecded}));
}

TEST(MemoryController, ReassignChangesScheme) {
  MemoryController mc;
  ASSERT_TRUE(mc.set_range({0, 0x1000, ecc::Scheme::kNone}));
  ASSERT_TRUE(mc.reassign_range(0, ecc::Scheme::kSecded));
  EXPECT_EQ(mc.scheme_for(0x10), ecc::Scheme::kSecded);
  EXPECT_FALSE(mc.reassign_range(0x9999, ecc::Scheme::kSecded));
}

TEST(MemoryController, ErrorRegistersRingAndInterrupt) {
  MemoryController mc;
  int interrupts = 0;
  mc.set_interrupt_handler([&](const ErrorRecord& r) {
    ++interrupts;
    EXPECT_TRUE(r.valid);
  });
  FaultSite site;
  site.chip = 3;
  for (int i = 0; i < 6; ++i)
    mc.report_uncorrectable(site, 0x40 * i, i, ecc::Scheme::kNone);
  EXPECT_EQ(interrupts, 6);
  EXPECT_EQ(mc.uncorrectable_count(), 6u);
  EXPECT_EQ(mc.dropped_error_records(), 0u);
  // 7th wraps: oldest record dropped.
  mc.report_uncorrectable(site, 0x1000, 7, ecc::Scheme::kNone);
  EXPECT_EQ(mc.dropped_error_records(), 1u);
  mc.clear_error_registers();
  for (const auto& e : mc.error_registers()) EXPECT_FALSE(e.valid);
}

TEST(MemoryController, CorrectionEnergyAccounted) {
  MemoryController mc;
  mc.note_corrected(ecc::Scheme::kChipkill);
  mc.note_corrected(ecc::Scheme::kSecded);
  EXPECT_EQ(mc.corrected_count(), 2u);
  EXPECT_GT(mc.correction_energy_pj(), 0.0);
}

// --- MemorySystem front end ----------------------------------------------------

TEST(MemorySystem, HitsDoNotTouchDram) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  sys.access(0, AccessKind::kRead);
  EXPECT_EQ(sys.dram_stats().reads, 1u);
  // 10 accesses spanning bytes 0..79 touch two lines in total.
  for (int i = 0; i < 10; ++i) sys.access(8 * i, AccessKind::kRead);
  EXPECT_EQ(sys.dram_stats().reads, 2u);
  EXPECT_EQ(sys.l1_stats().hits, 9u);
}

TEST(MemorySystem, StallsAccumulateCycles) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  sys.access(0, AccessKind::kRead);
  const auto cycles = sys.stats().cpu_cycles;
  EXPECT_GT(cycles, 2u);  // issue + L2 + DRAM stall
  sys.access(0, AccessKind::kRead);
  EXPECT_EQ(sys.stats().cpu_cycles, cycles + 2);  // L1 hit: base cost only
}

TEST(MemorySystem, ChipkillSlowerAndHungrierOnScatteredWrites) {
  // Random write-heavy traffic: no locality for the forced prefetch to
  // exploit, and posted writebacks collide with demand fills on the
  // lock-step channel pair.
  const std::size_t n = 200000;
  auto run = [&](ecc::Scheme s) {
    MemorySystem sys(SystemConfig::scaled(8), s);
    std::uint64_t lcg = 12345;
    for (std::size_t i = 0; i < n; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      sys.access((lcg >> 16) % (64ull << 20), AccessKind::kWrite);
    }
    return sys;
  };
  auto none = run(ecc::Scheme::kNone);
  auto ck = run(ecc::Scheme::kChipkill);
  EXPECT_GT(ck.stats().cpu_cycles, none.stats().cpu_cycles);
  EXPECT_GT(ck.memory_dynamic_energy_pj(), none.memory_dynamic_energy_pj());
  EXPECT_LT(ck.stats().ipc(), none.stats().ipc());
}

TEST(MemorySystem, ChipkillForcedPrefetchGivesNoFillBenefit) {
  // The paper models the lock-step pair's second line as wasted bits:
  // demand miss counts must match the no-ECC run exactly.
  const std::size_t n = 100000;
  auto run = [&](ecc::Scheme s) {
    MemorySystem sys(SystemConfig::scaled(8), s);
    for (std::size_t i = 0; i < n; ++i)
      sys.access(i * 64 % (64ull << 20), AccessKind::kRead);
    return sys.stats().demand_misses;
  };
  EXPECT_EQ(run(ecc::Scheme::kChipkill), run(ecc::Scheme::kNone));
}

TEST(MemorySystem, ClassifierSplitsDemandMisses) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  sys.hooks().region_classifier = [](std::uint64_t a) { return a < 1024; };
  sys.access(0, AccessKind::kRead);     // abft
  sys.access(1 << 20, AccessKind::kRead);  // other
  EXPECT_EQ(sys.stats().demand_misses_abft, 1u);
  EXPECT_EQ(sys.stats().demand_misses_other, 1u);
  EXPECT_GT(sys.stats().dram_dynamic_abft_pj, 0.0);
  EXPECT_GT(sys.stats().dram_dynamic_other_pj, 0.0);
}

TEST(MemorySystem, WritebacksArePosted) {
  // Fill a set with dirty lines, then evict: writebacks counted but the
  // demand read count matches the misses.
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  const auto l1_bytes = sys.config().l1.size_bytes;
  for (std::uint64_t a = 0; a < 4 * l1_bytes; a += 64)
    sys.access(a, AccessKind::kWrite);
  // Now force L1 evictions to flow: writebacks land in L2 (still no DRAM
  // writes until L2 evicts). Stream far beyond L2 to push DRAM writebacks.
  const auto l2_bytes = sys.config().l2.size_bytes;
  for (std::uint64_t a = 0; a < 3 * l2_bytes; a += 64)
    sys.access(a, AccessKind::kWrite);
  EXPECT_GT(sys.stats().writebacks, 0u);
}

TEST(MemorySystem, FillHookSeesDemandFills) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  std::uint64_t fills = 0;
  sys.hooks().fill_hook = [&](std::uint64_t, ecc::Scheme s, bool is_write) {
    if (!is_write) ++fills;
    EXPECT_EQ(s, ecc::Scheme::kSecded);
  };
  sys.access(0, AccessKind::kRead);
  sys.access(4096, AccessKind::kRead);
  EXPECT_EQ(fills, 2u);
}

TEST(MemorySystem, HooksAtConstruction) {
  // The whole hook set can be supplied up front, before the first access.
  memsim::Hooks hooks;
  std::uint64_t abft_fills = 0;
  hooks.region_classifier = [](std::uint64_t a) { return a < 1024; };
  hooks.fill_hook = [&](std::uint64_t a, ecc::Scheme, bool is_write) {
    if (!is_write && a < 1024) ++abft_fills;
  };
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded,
                   std::move(hooks));
  sys.access(0, AccessKind::kRead);
  sys.access(1 << 20, AccessKind::kRead);
  EXPECT_EQ(abft_fills, 1u);
  EXPECT_EQ(sys.stats().demand_misses_abft, 1u);
  EXPECT_EQ(sys.stats().demand_misses_other, 1u);
}

TEST(MemorySystem, HooksEditableAfterConstruction) {
  // hooks() is the only post-construction wiring path: the deprecated
  // set_* forwarders are gone, and -Werror=deprecated-declarations keeps
  // any resurrected deprecated API from compiling at all.
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  std::uint64_t fills = 0;
  sys.hooks().region_classifier = [](std::uint64_t a) { return a < 1024; };
  sys.hooks().fill_hook = [&](std::uint64_t, ecc::Scheme, bool) { ++fills; };
  EXPECT_TRUE(static_cast<bool>(sys.hooks().region_classifier));
  EXPECT_TRUE(static_cast<bool>(sys.hooks().fill_hook));
  sys.access(0, AccessKind::kRead);
  EXPECT_EQ(fills, 1u);
  EXPECT_EQ(sys.stats().demand_misses_abft, 1u);
}

TEST(MemorySystem, ProcessorEnergyScalesWithTimeAndIpc) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kNone);
  sys.execute(1000000);
  const auto e1 = sys.processor_energy_pj();
  sys.execute(1000000);
  EXPECT_NEAR(sys.processor_energy_pj(), 2 * e1, e1 * 0.01);
}

TEST(MemorySystem, SchemeForConsultsEccRegisters) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kChipkill);
  ASSERT_TRUE(sys.controller().set_range({0, 4096, ecc::Scheme::kNone}));
  std::vector<ecc::Scheme> seen;
  sys.hooks().fill_hook = [&](std::uint64_t, ecc::Scheme s, bool) {
    seen.push_back(s);
  };
  sys.access(64, AccessKind::kRead);     // in range: no ECC
  sys.access(1 << 20, AccessKind::kRead);  // outside: chipkill
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], ecc::Scheme::kNone);
  EXPECT_EQ(seen[1], ecc::Scheme::kChipkill);
}

// Regression: reset_stats must clear every layer's statistics (L1, L2,
// DRAM, the front-end counters) AND the obs metrics registry, or per-run
// reports double-count the warm-up phase.
TEST(System, ResetStatsClearsAllLayersAndMetricsRegistry) {
  MemorySystem sys(SystemConfig::scaled(8), ecc::Scheme::kSecded);
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
    sys.access(a, AccessKind::kRead);
  ASSERT_GT(sys.stats().mem_refs, 0u);
  ASSERT_GT(sys.stats().demand_misses, 0u);
  ASSERT_GT(sys.l1_stats().accesses, 0u);
  ASSERT_GT(sys.l2_stats().accesses, 0u);
  ASSERT_GT(sys.dram_stats().reads, 0u);
  auto& reg = obs::default_registry();
  ASSERT_GT(reg.counter("memsim.dram_access.secded").value(), 0u);

  sys.reset_stats();

  EXPECT_EQ(sys.stats().mem_refs, 0u);
  EXPECT_EQ(sys.stats().cpu_cycles, 0u);
  EXPECT_EQ(sys.stats().demand_misses, 0u);
  EXPECT_EQ(sys.stats().dram_dynamic_pj, 0.0);
  EXPECT_EQ(sys.l1_stats().accesses, 0u);
  EXPECT_EQ(sys.l1_stats().misses, 0u);
  EXPECT_EQ(sys.l2_stats().accesses, 0u);
  EXPECT_EQ(sys.l2_stats().misses, 0u);
  EXPECT_EQ(sys.dram_stats().reads, 0u);
  EXPECT_EQ(sys.dram_stats().activates, 0u);
  EXPECT_EQ(reg.counter("memsim.dram_access.secded").value(), 0u);
}

}  // namespace
}  // namespace abftecc::memsim
