// Page retirement + data migration (Section 3.1) and the adaptive ECC
// policy built on runtime ECC transition.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/adaptive.hpp"

namespace abftecc {
namespace {

struct Rig {
  memsim::MemorySystem sys;
  os::Os os;
  Rig() : sys(memsim::SystemConfig::scaled(8), ecc::Scheme::kChipkill),
          os(sys) {}
};

TEST(Retirement, RetiredFrameIsNeverReallocated) {
  os::PageAllocator pa(8 * 4096, 4096);
  const auto a = pa.allocate_contiguous(8, ecc::Scheme::kNone);
  ASSERT_TRUE(a.has_value());
  pa.free_range(*a, 8);
  pa.retire_frame(*a + 3 * 4096);  // frame 3 out of service
  EXPECT_EQ(pa.frames_retired(), 1u);
  // An 8-frame run no longer fits; the two fragments do.
  EXPECT_FALSE(pa.allocate_contiguous(8, ecc::Scheme::kNone).has_value());
  EXPECT_TRUE(pa.allocate_contiguous(4, ecc::Scheme::kNone).has_value());
  EXPECT_TRUE(pa.allocate_contiguous(3, ecc::Scheme::kNone).has_value());
}

TEST(Retirement, RetireFrameIdempotentAndFreesInUse) {
  os::PageAllocator pa(4 * 4096, 4096);
  const auto a = pa.allocate_contiguous(2, ecc::Scheme::kNone);
  ASSERT_TRUE(a.has_value());
  pa.retire_frame(*a);
  pa.retire_frame(*a);
  EXPECT_EQ(pa.frames_retired(), 1u);
  EXPECT_EQ(pa.frames_in_use(), 1u);
}

TEST(Retirement, MigrationMovesPhysicalMappingKeepsVirtual) {
  Rig rig;
  auto* p = static_cast<std::uint8_t*>(
      rig.os.malloc_ecc(3 * 4096, ecc::Scheme::kSecded, "m", true));
  ASSERT_NE(p, nullptr);
  p[100] = 0xAB;
  const auto old_phys = *rig.os.virt_to_phys(p);
  ASSERT_TRUE(rig.os.retire_and_migrate(p + 100));
  const auto new_phys = *rig.os.virt_to_phys(p);
  EXPECT_NE(new_phys, old_phys);
  EXPECT_EQ(p[100], 0xAB);  // data survived
  EXPECT_EQ(rig.os.migrations(), 1u);
  EXPECT_EQ(rig.os.pages().frames_retired(), 1u);
  // The MC ECC range follows the region.
  EXPECT_EQ(rig.sys.controller().scheme_for(new_phys), ecc::Scheme::kSecded);
  EXPECT_EQ(rig.sys.controller().scheme_for(old_phys), ecc::Scheme::kChipkill);
  EXPECT_EQ(rig.sys.controller().ranges_in_use(), 1u);
}

TEST(Retirement, MigrationChargesCopyTraffic) {
  Rig rig;
  auto* p = static_cast<std::uint8_t*>(
      rig.os.malloc_ecc(4096, ecc::Scheme::kNone, "m", true));
  const auto refs_before = rig.sys.stats().mem_refs;
  ASSERT_TRUE(rig.os.retire_and_migrate(p));
  // 4096/64 lines read + written.
  EXPECT_EQ(rig.sys.stats().mem_refs, refs_before + 2 * 64);
}

TEST(Retirement, MigrationOfUnknownPointerFails) {
  Rig rig;
  int local = 0;
  EXPECT_FALSE(rig.os.retire_and_migrate(&local));
}

TEST(Retirement, AutoRetireAfterRepeatedHardFaults) {
  Rig rig;
  rig.os.set_auto_retire_threshold(3);
  fault::Injector inj(rig.sys, rig.os);
  auto* p = static_cast<std::uint8_t*>(
      rig.os.malloc_ecc(4096, ecc::Scheme::kSecded, "m", true));
  for (int i = 0; i < 4096; ++i) p[i] = static_cast<std::uint8_t>(i);
  // A stuck chip produces uncorrectable errors on every re-read of the
  // frame; after 3 events the OS migrates the allocation away.
  for (int event = 0; event < 3; ++event) {
    const auto phys = *rig.os.virt_to_phys(p + 64 * event);
    inj.inject_bit(phys, 0);
    inj.inject_bit(phys + 1, 1);  // double-bit: uncorrectable under SECDED
    rig.sys.access(phys, memsim::AccessKind::kRead);
  }
  EXPECT_EQ(rig.os.migrations(), 1u);
  EXPECT_EQ(rig.os.pages().frames_retired(), 1u);
}

// --- Adaptive policy ----------------------------------------------------------

TEST(AdaptivePolicy, EscalatesUnderErrorPressure) {
  Rig rig;
  void* p = rig.os.malloc_ecc(4096, ecc::Scheme::kNone, "m", true);
  sim::AdaptivePolicy::Options opt;
  opt.t_c_seconds = 1.0;
  opt.tau_relaxed = 0.0;
  opt.tau_strong = 0.05;  // perf threshold = 20 s
  opt.delta_e_joules = 1e9;  // energy threshold negligible
  sim::AdaptivePolicy policy(rig.os, p, ecc::Scheme::kNone, opt);
  ASSERT_EQ(policy.current(), ecc::Scheme::kNone);
  // 10 errors in 10 seconds: observed MTTF ~1 s << 20 s threshold.
  EXPECT_EQ(policy.on_epoch(10.0, 10), ecc::Scheme::kSecded);
  // Pressure persists at the new tier: escalate to chipkill (= ASE).
  EXPECT_EQ(policy.on_epoch(10.0, 10), ecc::Scheme::kChipkill);
  EXPECT_EQ(policy.transitions(), 2u);
  const auto phys = *rig.os.virt_to_phys(p);
  EXPECT_EQ(rig.sys.controller().scheme_for(phys), ecc::Scheme::kChipkill);
}

TEST(AdaptivePolicy, DeescalatesAfterSustainedCalm) {
  Rig rig;
  void* p = rig.os.malloc_ecc(4096, ecc::Scheme::kSecded, "m", true);
  sim::AdaptivePolicy::Options opt;
  opt.t_c_seconds = 1.0;
  opt.tau_relaxed = 0.0;
  opt.tau_strong = 0.05;
  opt.delta_e_joules = 1e9;
  opt.calm_epochs_to_relax = 3;
  sim::AdaptivePolicy policy(rig.os, p, ecc::Scheme::kSecded, opt);
  // Three calm epochs well above threshold x headroom.
  EXPECT_EQ(policy.on_epoch(1000.0, 0), ecc::Scheme::kSecded);
  EXPECT_EQ(policy.on_epoch(1000.0, 0), ecc::Scheme::kSecded);
  EXPECT_EQ(policy.on_epoch(1000.0, 0), ecc::Scheme::kNone);
  const auto phys = *rig.os.virt_to_phys(p);
  EXPECT_EQ(rig.sys.controller().scheme_for(phys), ecc::Scheme::kNone);
}

TEST(AdaptivePolicy, HysteresisPreventsFlapping) {
  Rig rig;
  void* p = rig.os.malloc_ecc(4096, ecc::Scheme::kSecded, "m", true);
  sim::AdaptivePolicy::Options opt;
  opt.t_c_seconds = 1.0;
  opt.tau_relaxed = 0.0;
  opt.tau_strong = 0.05;  // threshold 20 s
  opt.delta_e_joules = 1e9;
  opt.headroom = 4.0;
  sim::AdaptivePolicy policy(rig.os, p, ecc::Scheme::kSecded, opt);
  // Observed MTTF ~50 s: above threshold but inside the headroom band --
  // the policy must hold, not relax.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(policy.on_epoch(50.0, 1), ecc::Scheme::kSecded);
  EXPECT_EQ(policy.transitions(), 0u);
}

TEST(AdaptivePolicy, CeilingAndFloorOfLadder) {
  Rig rig;
  void* p = rig.os.malloc_ecc(4096, ecc::Scheme::kChipkill, "m", true);
  sim::AdaptivePolicy::Options opt;
  opt.delta_e_joules = 1e9;
  sim::AdaptivePolicy policy(rig.os, p, ecc::Scheme::kChipkill, opt);
  // Already at the top: more errors change nothing.
  EXPECT_EQ(policy.on_epoch(0.1, 100), ecc::Scheme::kChipkill);
  EXPECT_EQ(policy.transitions(), 0u);
}

}  // namespace
}  // namespace abftecc
