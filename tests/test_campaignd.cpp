// Tests for the campaign-as-a-service subsystem (src/campaignd) and the
// mergeable campaign::Accumulator it folds through:
//   * Accumulator merge algebra: order-independent, bit-exact, JSON
//     round-trip;
//   * exhaustive SECDED(72,64) enumeration: exact CI-free counts,
//     identical for any thread count;
//   * JobSpec wire round-trip and the checkpoint fingerprint;
//   * ChunkRecord serialization and the Fletcher-64 checkpoint store
//     (tamper and foreign-manifest rejection);
//   * the forked-worker shard supervisor: byte-identical to the
//     in-process pool, rescues chunks from a SIGKILL'd worker, and
//     resumes an aborted sweep from its checkpoint byte-identically;
//   * the Unix-socket daemon end to end (submit/wait/results/shutdown),
//     including the protocol-2 telemetry verbs: the rich ping, the
//     `metrics` OpenMetrics scrape, and the `subscribe` event stream.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/accumulator.hpp"
#include "campaign/campaign.hpp"
#include "campaign/exhaustive.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/client.hpp"
#include "campaignd/protocol.hpp"
#include "campaignd/server.hpp"
#include "campaignd/shard.hpp"
#include "obs/jsonv.hpp"

namespace abftecc::campaignd {
namespace {

using campaign::Accumulator;
using campaign::CampaignOptions;
using campaign::CampaignResult;
using campaign::GoldenRun;
using campaign::Outcome;
using campaign::TrialOutcome;

/// Small inputs so a trial costs milliseconds, not seconds.
CampaignOptions tiny_options() {
  CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform.strategy = sim::Strategy::kPartialChipkillSecded;
  opt.platform.dgemm_dim = 48;
  opt.platform.cholesky_dim = 48;
  opt.platform.cg_dim = 96;
  opt.platform.cg_iterations = 2;
  opt.platform.hpl_dim = 48;
  opt.trials = 24;
  opt.threads = 2;
  opt.campaign_seed = 17;
  return opt;
}

/// Scratch directory removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/abftecc-campaignd-XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::vector<TrialOutcome> run_all_trials(const CampaignOptions& opt,
                                         const GoldenRun& golden) {
  std::vector<TrialOutcome> trials;
  for (std::size_t i = 0; i < opt.trials; ++i)
    trials.push_back(
        campaign::run_trial(opt, golden, static_cast<std::uint32_t>(i)));
  return trials;
}

/// Fields of the accumulator that are part of the byte-determinism
/// surface (cycle sums are host-heap-layout sensitive and excluded).
void expect_deterministic_fields_equal(const Accumulator& a,
                                       const Accumulator& b) {
  EXPECT_EQ(a.trials(), b.trials());
  for (Outcome o : campaign::kAllOutcomes)
    EXPECT_EQ(a.outcome_count(o), b.outcome_count(o));
  EXPECT_EQ(a.unclassified(), b.unclassified());
  EXPECT_EQ(a.panicked(), b.panicked());
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_EQ(a.exposed_dropped(), b.exposed_dropped());
  EXPECT_EQ(a.max_abs_error(), b.max_abs_error());
  const auto la = a.lineage_summary();
  const auto lb = b.lineage_summary();
  EXPECT_EQ(la.ok, lb.ok);
  EXPECT_EQ(la.faults, lb.faults);
  EXPECT_EQ(la.orphans, lb.orphans);
  EXPECT_EQ(la.double_counted, lb.double_counted);
}

// --------------------------------------------------------- accumulator --

TEST(Accumulator, MergeIsOrderIndependent) {
  CampaignOptions opt = tiny_options();
  opt.trials = 12;
  opt.lineage = true;
  const GoldenRun golden = campaign::run_golden(opt);
  const std::vector<TrialOutcome> trials = run_all_trials(opt, golden);

  Accumulator sequential(opt);
  for (const auto& t : trials) sequential.add(t);

  // Three partials folded in every arrival order a shard race could
  // produce must match the sequential fold bit-exactly.
  Accumulator parts[3] = {Accumulator(opt), Accumulator(opt),
                          Accumulator(opt)};
  for (std::size_t i = 0; i < trials.size(); ++i)
    parts[i % 3].add(trials[i]);
  const int orders[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 0, 2}};
  for (const auto& order : orders) {
    Accumulator merged(opt);
    for (int idx : order) merged.merge(parts[idx]);
    EXPECT_TRUE(merged == sequential);
    EXPECT_EQ(merged.to_json(), sequential.to_json());
  }
}

TEST(Accumulator, JsonRoundTripIsBitExact) {
  CampaignOptions opt = tiny_options();
  opt.trials = 8;
  opt.lineage = true;
  opt.measure_latency = true;
  const GoldenRun golden = campaign::run_golden(opt);
  Accumulator acc(opt);
  for (const auto& t : run_all_trials(opt, golden)) acc.add(t);

  const std::string json = acc.to_json();
  std::string error;
  const auto parsed = obs::json_parse(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  Accumulator back;
  ASSERT_TRUE(back.from_json(*parsed, &error)) << error;
  EXPECT_TRUE(back == acc);
  EXPECT_EQ(back.to_json(), json);
}

TEST(Accumulator, NonFiniteMaxAbsErrorSurvivesJsonRoundTrip) {
  // An exposed fault can blow max_abs_error up to infinity; the sharded/
  // checkpoint path round-trips the accumulator through JSON, where the
  // writer encodes non-finite doubles as string sentinels. Those must
  // parse back to the same value or a sharded sweep silently
  // underreports the error magnitude relative to the in-process path.
  const Accumulator empty(tiny_options());
  std::string json = empty.to_json();
  const std::string needle = "\"max_abs_error\":0";
  const std::size_t pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos) << json;
  json.replace(pos, needle.size(), "\"max_abs_error\":\"Infinity\"");

  std::string error;
  const auto parsed = obs::json_parse(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  Accumulator back;
  ASSERT_TRUE(back.from_json(*parsed, &error)) << error;
  EXPECT_NE(back.to_json().find("\"max_abs_error\":\"Infinity\""),
            std::string::npos)
      << back.to_json();
}

TEST(Accumulator, OfMatchesManualFold) {
  CampaignOptions opt = tiny_options();
  opt.trials = 6;
  const GoldenRun golden = campaign::run_golden(opt);
  const std::vector<TrialOutcome> trials = run_all_trials(opt, golden);
  Accumulator manual(opt);
  for (const auto& t : trials) manual.add(t);
  EXPECT_TRUE(Accumulator::of(opt, trials) == manual);
}

// ---------------------------------------------------------- exhaustive --

TEST(Exhaustive, CoversFullSpaceWithExactCounts) {
  campaign::exhaustive::Options ex;
  ex.words = 4;
  ex.seed = 7;
  ex.threads = 1;
  const auto single = campaign::exhaustive::run(ex);
  ex.threads = 3;
  const auto multi = campaign::exhaustive::run(ex);

  // Hsiao SECDED(72,64) analytic guarantees: every 1-bit flip corrects
  // to the exact original word, every 2-bit flip is detected
  // uncorrectable. Counts are exact -- no sampling, no intervals.
  EXPECT_EQ(single.counts.singles_total,
            ex.words * campaign::exhaustive::kSinglesPerWord);
  EXPECT_EQ(single.counts.singles_corrected_exact,
            single.counts.singles_total);
  EXPECT_EQ(single.counts.singles_miscorrected, 0u);
  EXPECT_EQ(single.counts.singles_detected, 0u);
  EXPECT_EQ(single.counts.singles_missed, 0u);
  EXPECT_EQ(single.counts.doubles_total,
            ex.words * campaign::exhaustive::kDoublesPerWord);
  EXPECT_EQ(single.counts.doubles_detected, single.counts.doubles_total);
  EXPECT_EQ(single.counts.doubles_miscorrected, 0u);
  EXPECT_EQ(single.counts.doubles_missed, 0u);
  EXPECT_EQ(single.counts.doubles_mutated, 0u);
  EXPECT_TRUE(single.ok());

  // The enumeration partitions the pattern space statically, so the
  // thread count cannot change a single count.
  EXPECT_TRUE(multi.counts == single.counts);
  EXPECT_EQ(multi.to_json(), single.to_json());
}

TEST(Exhaustive, ShouldAbortStopsTheSweepEarly) {
  campaign::exhaustive::Options ex;
  ex.words = 64;
  ex.seed = 7;
  ex.threads = 2;
  std::uint64_t calls = 0;
  const auto r = campaign::exhaustive::run(
      ex, /*progress=*/{},
      [&] { return ++calls >= 4; });  // hooks are serialized: no lock needed
  EXPECT_TRUE(r.aborted);
  // The abort lands within a word or two of the trigger (each worker may
  // finish the word it already claimed), far short of the full space.
  EXPECT_LT(r.counts.singles_total,
            ex.words * campaign::exhaustive::kSinglesPerWord);
  EXPECT_FALSE(r.ok());

  // A sweep nobody aborts reports aborted == false.
  ex.words = 2;
  EXPECT_FALSE(campaign::exhaustive::run(ex).aborted);
}

// ------------------------------------------------------------ protocol --

TEST(Protocol, JobSpecRoundTripsThroughCanonicalJson) {
  JobSpec spec;
  spec.name = "nightly-sweep";
  spec.shards = 7;
  spec.options.kernel = sim::Kernel::kCg;
  spec.options.trials = 100000;
  spec.options.campaign_seed = 99;
  spec.options.chunk = 64;
  spec.options.lineage = true;
  spec.options.fault.kind = campaign::FaultKind::kChipKill;
  spec.options.fault.count = 2;
  spec.options.fault.storm_all_ranges = true;
  spec.options.platform.strategy = sim::Strategy::kWholeSecded;
  spec.options.platform.ladder = true;
  spec.options.platform.seed = 1234;
  spec.exhaustive_options.words = 3;

  std::string error;
  const auto parsed = obs::json_parse(job_to_json(spec), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  JobSpec back;
  ASSERT_TRUE(job_from_json(*parsed, &back, &error)) << error;
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.shards, spec.shards);
  EXPECT_EQ(back.options.kernel, spec.options.kernel);
  EXPECT_EQ(back.options.trials, spec.options.trials);
  EXPECT_EQ(back.options.campaign_seed, spec.options.campaign_seed);
  EXPECT_EQ(back.options.chunk, spec.options.chunk);
  EXPECT_EQ(back.options.lineage, spec.options.lineage);
  EXPECT_EQ(back.options.fault.kind, spec.options.fault.kind);
  EXPECT_EQ(back.options.fault.count, spec.options.fault.count);
  EXPECT_EQ(back.options.fault.storm_all_ranges,
            spec.options.fault.storm_all_ranges);
  EXPECT_EQ(back.options.platform.strategy, spec.options.platform.strategy);
  EXPECT_EQ(back.options.platform.ladder, spec.options.platform.ladder);
  EXPECT_EQ(back.options.platform.seed, spec.options.platform.seed);
  EXPECT_EQ(back.exhaustive_options.words, spec.exhaustive_options.words);
  // The round-trip is canonical: re-serializing gives the same bytes.
  EXPECT_EQ(job_to_json(back), job_to_json(spec));
}

TEST(Protocol, FingerprintIgnoresLabelButPinsResults) {
  JobSpec a;
  a.name = "alpha";
  JobSpec b = a;
  b.name = "beta";
  EXPECT_EQ(job_fingerprint(a), job_fingerprint(b));
  b.options.campaign_seed ^= 1;
  EXPECT_NE(job_fingerprint(a), job_fingerprint(b));
  b = a;
  b.options.fault.kind = campaign::FaultKind::kChipKill;
  EXPECT_NE(job_fingerprint(a), job_fingerprint(b));
}

// ---------------------------------------------------------- checkpoint --

ChunkRecord make_chunk(const CampaignOptions& opt, const GoldenRun& golden,
                       std::uint32_t id, std::uint64_t begin,
                       std::uint64_t end) {
  ChunkRecord rec;
  rec.id = id;
  rec.begin = begin;
  rec.end = end;
  rec.acc = Accumulator(opt);
  for (std::uint64_t i = begin; i < end; ++i) {
    const TrialOutcome t =
        campaign::run_trial(opt, golden, static_cast<std::uint32_t>(i));
    rec.acc.add(t);
    rec.trial_lines.push_back(campaign::trial_jsonl_line(opt, t));
  }
  return rec;
}

TEST(Checkpoint, ChunkRecordRoundTrips) {
  CampaignOptions opt = tiny_options();
  const GoldenRun golden = campaign::run_golden(opt);
  const ChunkRecord rec = make_chunk(opt, golden, 3, 6, 9);
  ChunkRecord back;
  std::string error;
  ASSERT_TRUE(chunk_from_json(chunk_to_json(rec), &back, &error)) << error;
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.begin, rec.begin);
  EXPECT_EQ(back.end, rec.end);
  EXPECT_TRUE(back.acc == rec.acc);
  EXPECT_EQ(back.trial_lines, rec.trial_lines);
  EXPECT_EQ(chunk_to_json(back), chunk_to_json(rec));
}

TEST(Checkpoint, StoreAndReloadSurvivesReopen) {
  TempDir td;
  CampaignOptions opt = tiny_options();
  const GoldenRun golden = campaign::run_golden(opt);
  std::string error;
  CampaignCheckpoint ck;
  ASSERT_TRUE(ck.open(td.path + "/ck", 0xabcdef, 4, 12, 3, &error)) << error;
  ASSERT_TRUE(ck.store(make_chunk(opt, golden, 0, 0, 3), &error)) << error;
  ASSERT_TRUE(ck.store(make_chunk(opt, golden, 2, 6, 9), &error)) << error;

  CampaignCheckpoint again;
  ASSERT_TRUE(again.open(td.path + "/ck", 0xabcdef, 4, 12, 3, &error))
      << error;
  EXPECT_EQ(again.loaded().size(), 2u);
  EXPECT_TRUE(again.has(0));
  EXPECT_FALSE(again.has(1));
  EXPECT_TRUE(again.has(2));
  EXPECT_EQ(again.loaded().at(2).begin, 6u);
  EXPECT_TRUE(again.loaded().at(0).acc ==
              make_chunk(opt, golden, 0, 0, 3).acc);
}

TEST(Checkpoint, TamperedChunkIsRejected) {
  TempDir td;
  CampaignOptions opt = tiny_options();
  const GoldenRun golden = campaign::run_golden(opt);
  std::string error;
  CampaignCheckpoint ck;
  ASSERT_TRUE(ck.open(td.path + "/ck", 1, 4, 12, 3, &error)) << error;
  ASSERT_TRUE(ck.store(make_chunk(opt, golden, 1, 3, 6), &error)) << error;

  // Flip one payload byte; the Fletcher-64 trailer must catch it.
  const std::string file = td.path + "/ck/chunk-000001.json";
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(30);
  f.put('~');
  f.close();

  CampaignCheckpoint again;
  EXPECT_FALSE(again.open(td.path + "/ck", 1, 4, 12, 3, &error));
  EXPECT_NE(error.find("Fletcher"), std::string::npos) << error;
}

TEST(Checkpoint, ForeignManifestIsRejected) {
  TempDir td;
  std::string error;
  CampaignCheckpoint ck;
  ASSERT_TRUE(ck.open(td.path + "/ck", 111, 4, 12, 3, &error)) << error;
  // Different fingerprint, and separately different chunk geometry.
  CampaignCheckpoint other;
  EXPECT_FALSE(other.open(td.path + "/ck", 222, 4, 12, 3, &error));
  EXPECT_NE(error.find("manifest"), std::string::npos) << error;
  EXPECT_FALSE(other.open(td.path + "/ck", 111, 6, 12, 2, &error));
  EXPECT_NE(error.find("manifest"), std::string::npos) << error;
}

// --------------------------------------------------------------- shard --

TEST(Shard, ByteIdenticalToInProcessPool) {
  CampaignOptions opt = tiny_options();
  opt.lineage = true;
  opt.chunk = 3;
  const GoldenRun golden = campaign::run_golden(opt);

  const CampaignResult res = campaign::run_campaign(opt, golden);
  std::vector<std::string> expected;
  for (const auto& t : res.trials)
    expected.push_back(campaign::trial_jsonl_line(opt, t));
  const Accumulator baseline = Accumulator::of(opt, res.trials);

  ShardOptions so;
  so.shards = 3;
  const ShardOutcome out = run_sharded(opt, golden, so);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.chunks_executed, out.chunks_total);
  EXPECT_EQ(out.trial_lines, expected);
  expect_deterministic_fields_equal(out.acc, baseline);
}

/// PIDs whose parent is this process (the forked shard workers).
std::vector<pid_t> child_pids() {
  std::vector<pid_t> kids;
  const pid_t self = getpid();
  for (const auto& entry : std::filesystem::directory_iterator("/proc")) {
    const std::string name = entry.path().filename();
    if (name.find_first_not_of("0123456789") != std::string::npos) continue;
    std::ifstream stat(entry.path() / "stat");
    std::string content((std::istreambuf_iterator<char>(stat)),
                        std::istreambuf_iterator<char>());
    // Field 4 (ppid) follows the parenthesized comm, which may itself
    // contain spaces -- parse from the last ')'.
    const std::size_t paren = content.rfind(')');
    if (paren == std::string::npos) continue;
    std::istringstream rest(content.substr(paren + 1));
    std::string state;
    pid_t ppid = 0;
    rest >> state >> ppid;
    if (ppid == self) kids.push_back(static_cast<pid_t>(std::stol(name)));
  }
  return kids;
}

TEST(Shard, SigkilledWorkerChunksAreRescued) {
  CampaignOptions opt = tiny_options();
  opt.trials = 30;
  opt.chunk = 2;
  const GoldenRun golden = campaign::run_golden(opt);

  const CampaignResult res = campaign::run_campaign(opt, golden);
  std::vector<std::string> expected;
  for (const auto& t : res.trials)
    expected.push_back(campaign::trial_jsonl_line(opt, t));

  std::size_t done = 0;
  bool killed = false;
  ShardOptions so;
  so.shards = 2;
  so.progress = [&](std::size_t d, std::size_t) { done = d; };
  // SIGKILL one live worker mid-sweep from the supervisor's own service
  // hook; its in-flight chunk must be requeued and the slot respawned.
  so.service = [&] {
    if (killed || done < 4) return;
    const std::vector<pid_t> kids = child_pids();
    if (kids.empty()) return;
    killed = true;
    kill(kids.front(), SIGKILL);
  };
  const ShardOutcome out = run_sharded(opt, golden, so);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(killed);
  EXPECT_GE(out.workers_died, 1u);
  EXPECT_GT(out.workers_spawned, so.shards);
  EXPECT_EQ(out.trial_lines, expected);
  expect_deterministic_fields_equal(out.acc,
                                    Accumulator::of(opt, res.trials));
}

TEST(Shard, AbortedSweepResumesByteIdentical) {
  TempDir td;
  CampaignOptions opt = tiny_options();
  opt.trials = 30;
  opt.chunk = 2;
  opt.lineage = true;
  const GoldenRun golden = campaign::run_golden(opt);

  const CampaignResult res = campaign::run_campaign(opt, golden);
  std::vector<std::string> expected;
  for (const auto& t : res.trials)
    expected.push_back(campaign::trial_jsonl_line(opt, t));

  JobSpec fp;
  fp.name.clear();
  fp.shards = 0;
  fp.options = opt;
  const std::uint64_t fingerprint = job_fingerprint(fp);

  // First pass: abandon the sweep partway. Finished chunks stay behind,
  // Fletcher-verified, in the checkpoint directory.
  std::size_t done = 0;
  ShardOptions first;
  first.shards = 2;
  first.checkpoint_dir = td.path + "/ck";
  first.fingerprint = fingerprint;
  first.progress = [&](std::size_t d, std::size_t) { done = d; };
  first.should_abort = [&] { return done >= 10; };
  const ShardOutcome interrupted = run_sharded(opt, golden, first);
  EXPECT_FALSE(interrupted.ok);
  EXPECT_TRUE(interrupted.aborted);

  std::size_t survived = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(td.path + "/ck"))
    if (entry.path().filename().string().rfind("chunk-", 0) == 0) ++survived;
  ASSERT_GT(survived, 0u);
  ASSERT_LT(survived, 15u);

  // Second pass over the same directory -- different shard count on
  // purpose -- must replay the survivors and complete byte-identically
  // to the uninterrupted in-process baseline.
  ShardOptions second;
  second.shards = 3;
  second.checkpoint_dir = td.path + "/ck";
  second.fingerprint = fingerprint;
  const ShardOutcome resumed = run_sharded(opt, golden, second);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.chunks_resumed, survived);
  EXPECT_EQ(resumed.chunks_executed + resumed.chunks_resumed,
            resumed.chunks_total);
  EXPECT_EQ(resumed.trial_lines, expected);
  expect_deterministic_fields_equal(resumed.acc,
                                    Accumulator::of(opt, res.trials));

  // A different job must refuse to resume from this checkpoint.
  CampaignOptions foreign = opt;
  foreign.campaign_seed ^= 1;
  JobSpec ffp = fp;
  ffp.options = foreign;
  ShardOptions third = second;
  third.fingerprint = job_fingerprint(ffp);
  const ShardOutcome refused = run_sharded(foreign, golden, third);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.error.find("manifest"), std::string::npos)
      << refused.error;
}

// -------------------------------------------------------------- server --

TEST(Server, EndToEndOverUnixSocket) {
  TempDir td;
  const std::string sock = td.path + "/sock";
  const pid_t daemon = fork();
  ASSERT_NE(daemon, -1);
  if (daemon == 0) {
    ServerOptions so;
    so.socket_path = sock;
    so.state_dir = td.path + "/state";
    so.default_shards = 2;
    Server server(so);
    std::string error;
    if (!server.start(&error)) _exit(3);
    _exit(server.run());
  }

  Client client;
  std::string error;
  bool connected = false;
  for (int i = 0; i < 200 && !connected; ++i) {
    connected = client.connect(sock, &error);
    if (!connected) usleep(25 * 1000);
  }
  ASSERT_TRUE(connected) << error;
  EXPECT_TRUE(client.ping(&error)) << error;

  // The envelope is versioned: replies carry the daemon's protocol number
  // and a request from a foreign protocol is refused with a
  // self-describing error rather than answered in a shape the sender may
  // not parse.
  {
    const auto pong = client.call(R"({"protocol":2,"op":"ping"})", &error);
    ASSERT_TRUE(pong.has_value()) << error;
    EXPECT_EQ(pong->u64("protocol"), kProtocolVersion);
    const auto foreign =
        client.call(R"({"protocol":999,"op":"ping"})", &error);
    ASSERT_TRUE(foreign.has_value()) << error;
    EXPECT_FALSE(foreign->boolean("ok"));
    EXPECT_NE(std::string(foreign->str("error")).find("protocol mismatch"),
              std::string::npos)
        << foreign->str("error");
  }

  // The protocol-2 ping is a one-line health summary: daemon identity,
  // uptime, and the job-table tallies.
  {
    const auto info = client.ping_info(&error);
    ASSERT_TRUE(info.has_value()) << error;
    EXPECT_EQ(info->str("version"), kServerVersion);
    EXPECT_GE(info->num("uptime_s", -1.0), 0.0);
    EXPECT_EQ(info->u64("jobs"), 0u);
    EXPECT_EQ(info->u64("queued"), 0u);
    EXPECT_EQ(info->u64("running"), 0u);
    EXPECT_EQ(info->u64("done"), 0u);
    EXPECT_EQ(info->u64("failed"), 0u);
  }

  JobSpec spec;
  spec.name = "e2e";
  spec.options = tiny_options();
  spec.options.trials = 8;
  spec.options.chunk = 2;
  spec.shards = 2;
  const auto id = client.submit(spec, &error);
  ASSERT_TRUE(id.has_value()) << error;

  // Live subscription on a second connection: the stream must deliver at
  // least one progress/done event and terminate with done:true carrying
  // the final job state.
  {
    Client watcher;
    std::string werror;
    ASSERT_TRUE(watcher.connect(sock, &werror)) << werror;
    std::size_t events = 0;
    std::string last_state;
    std::uint64_t last_done_trials = 0;
    const auto fin = watcher.subscribe(
        *id,
        [&](const obs::JsonValue& ev) {
          ++events;
          last_state = ev.str("state");
          last_done_trials = ev.u64("trials_done");
          EXPECT_EQ(ev.str("id"), *id);
          EXPECT_EQ(ev.u64("trials_total"), 8u);
        },
        &werror);
    ASSERT_TRUE(fin.has_value()) << werror;
    EXPECT_TRUE(fin->boolean("done"));
    EXPECT_EQ(fin->str("event"), "done");
    EXPECT_GE(events, 1u);
    EXPECT_EQ(last_state, "done");
    EXPECT_EQ(last_done_trials, 8u);
  }

  const auto done = client.wait(*id, &error);
  ASSERT_TRUE(done.has_value()) << error;
  EXPECT_EQ(done->str("state"), "done");
  EXPECT_EQ(done->u64("trials_done"), 8u);

  // Subscribing to an already-terminal job yields exactly one final event.
  {
    std::size_t events = 0;
    const auto fin = client.subscribe(
        *id, [&](const obs::JsonValue&) { ++events; }, &error);
    ASSERT_TRUE(fin.has_value()) << error;
    EXPECT_TRUE(fin->boolean("done"));
    EXPECT_EQ(events, 1u);
    // An unknown job id is an error, not an empty stream.
    std::string suberr;
    EXPECT_FALSE(
        client.subscribe("job-does-not-exist", nullptr, &suberr).has_value());
    EXPECT_FALSE(suberr.empty());
  }

  // The spool holds the streamed per-trial JSONL: one line per trial.
  std::ifstream trials(std::string(done->str("trials_path")));
  ASSERT_TRUE(trials.good());
  std::size_t lines = 0;
  for (std::string line; std::getline(trials, line);)
    if (!line.empty()) ++lines;
  EXPECT_EQ(lines, 8u);

  JobSpec ex;
  ex.name = "e2e-exhaustive";
  ex.exhaustive = true;
  ex.exhaustive_options.words = 2;
  const auto exid = client.submit(ex, &error);
  ASSERT_TRUE(exid.has_value()) << error;
  const auto exdone = client.wait(*exid, &error);
  ASSERT_TRUE(exdone.has_value()) << error;
  EXPECT_EQ(exdone->str("state"), "done");

  const auto status = client.status(&error);
  ASSERT_TRUE(status.has_value()) << error;
  EXPECT_EQ(status->u64("done"), 2u);

  // The metrics verb returns both the OpenMetrics exposition (daemon
  // instruments plus per-job families) and the raw time-series rings.
  {
    const auto m = client.metrics(&error);
    ASSERT_TRUE(m.has_value()) << error;
    const std::string expo(m->str("exposition"));
    EXPECT_NE(expo.find("# TYPE campaignd_requests counter\n"),
              std::string::npos)
        << expo;
    EXPECT_NE(expo.find("campaignd_jobs_completed_total 2\n"),
              std::string::npos)
        << expo;
    EXPECT_NE(expo.find("# TYPE campaignd_job_trials_done gauge\n"),
              std::string::npos)
        << expo;
    EXPECT_NE(expo.find("name=\"e2e\""), std::string::npos) << expo;
    EXPECT_NE(expo.find("# TYPE campaignd_job_seconds histogram\n"),
              std::string::npos)
        << expo;
    ASSERT_GE(expo.size(), 6u);
    EXPECT_EQ(expo.substr(expo.size() - 6), "# EOF\n");
    const auto* series = m->find("series");
    ASSERT_NE(series, nullptr);
    EXPECT_EQ(series->str("schema"), "timeseries-v1");
  }

  // The refreshed ping reflects the finished jobs.
  {
    const auto info = client.ping_info(&error);
    ASSERT_TRUE(info.has_value()) << error;
    EXPECT_EQ(info->u64("jobs"), 2u);
    EXPECT_EQ(info->u64("done"), 2u);
    EXPECT_EQ(info->u64("failed"), 0u);
  }

  EXPECT_TRUE(client.shutdown_daemon(&error)) << error;
  int wstatus = 0;
  ASSERT_EQ(waitpid(daemon, &wstatus, 0), daemon);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(Server, ClientRejectsDaemonSpeakingForeignProtocol) {
  // A pre-versioning daemon answers without a "protocol" member. The
  // client must fail the call with a clear mismatch error instead of
  // interpreting the reply. Fake such a daemon with a one-shot echo
  // server that answers every request line with an unversioned ok.
  TempDir td;
  const std::string sock = td.path + "/oldsock";
  const pid_t daemon = fork();
  ASSERT_NE(daemon, -1);
  if (daemon == 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (lfd < 0 ||
        ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(lfd, 1) != 0)
      _exit(3);
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) _exit(3);
    char c = 0;
    while (::read(cfd, &c, 1) == 1 && c != '\n') {
    }
    const char reply[] = "{\"ok\":true,\"op\":\"ping\"}\n";
    if (::write(cfd, reply, sizeof(reply) - 1) < 0) _exit(3);
    ::close(cfd);
    ::close(lfd);
    _exit(0);
  }

  Client client;
  std::string error;
  bool connected = false;
  for (int i = 0; i < 200 && !connected; ++i) {
    connected = client.connect(sock, &error);
    if (!connected) usleep(25 * 1000);
  }
  ASSERT_TRUE(connected) << error;
  EXPECT_FALSE(client.ping(&error));
  EXPECT_NE(error.find("protocol mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("protocol 0"), std::string::npos) << error;

  int wstatus = 0;
  ASSERT_EQ(waitpid(daemon, &wstatus, 0), daemon);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

}  // namespace
}  // namespace abftecc::campaignd
