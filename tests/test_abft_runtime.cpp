// Unit tests for the ABFT runtime (structure registry, OS error-log
// mapping) and the shared checksum primitives.
#include <gtest/gtest.h>

#include <vector>

#include "abft/checksum.hpp"
#include "abft/common.hpp"
#include "abft/runtime.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"

namespace abftecc::abft {
namespace {

TEST(Runtime, SoftwareOnlyModeWithoutOs) {
  Runtime rt(nullptr);
  EXPECT_FALSE(rt.hardware_assisted_available());
  EXPECT_FALSE(rt.errors_pending());
  EXPECT_TRUE(rt.drain_located_errors().empty());
}

struct OsRig {
  memsim::MemorySystem sys;
  os::Os os;
  OsRig() : sys(memsim::SystemConfig::scaled(8), ecc::Scheme::kChipkill),
            os(sys) {}
};

TEST(Runtime, MapsExposedErrorToStructureElement) {
  OsRig rig;
  Runtime rt(&rig.os);
  auto* base = static_cast<double*>(
      rig.os.malloc_ecc(256 * sizeof(double), ecc::Scheme::kNone, "v", true));
  const std::size_t id = rt.register_structure("vec", base, 256);

  memsim::FaultSite site;
  rig.sys.controller().report_uncorrectable(
      site, *rig.os.virt_to_phys(base + 37), 1, ecc::Scheme::kNone);
  ASSERT_TRUE(rt.errors_pending());
  const auto errors = rt.drain_located_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].structure_id, id);
  EXPECT_EQ(errors[0].structure_name, "vec");
  EXPECT_EQ(errors[0].element_index, 37u);
  EXPECT_FALSE(rt.errors_pending());
}

TEST(Runtime, ErrorOutsideStructuresReturnsNpos) {
  OsRig rig;
  Runtime rt(&rig.os);
  auto* base = static_cast<double*>(
      rig.os.malloc_ecc(64 * sizeof(double), ecc::Scheme::kNone, "v", true));
  (void)base;
  // Error lands in the ABFT page but no structure claims it.
  memsim::FaultSite site;
  rig.sys.controller().report_uncorrectable(
      site, *rig.os.virt_to_phys(base), 1, ecc::Scheme::kNone);
  const auto errors = rt.drain_located_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].structure_id, Runtime::npos);
}

TEST(Runtime, UnregisteredStructureNoLongerMatches) {
  OsRig rig;
  Runtime rt(&rig.os);
  auto* base = static_cast<double*>(
      rig.os.malloc_ecc(64 * sizeof(double), ecc::Scheme::kNone, "v", true));
  const std::size_t id = rt.register_structure("vec", base, 64);
  rt.unregister_structure(id);
  memsim::FaultSite site;
  rig.sys.controller().report_uncorrectable(
      site, *rig.os.virt_to_phys(base + 5), 1, ecc::Scheme::kNone);
  const auto errors = rt.drain_located_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].structure_id, Runtime::npos);
}

TEST(Runtime, OverlappingStructuresFirstRegisteredWins) {
  OsRig rig;
  Runtime rt(&rig.os);
  auto* base = static_cast<double*>(
      rig.os.malloc_ecc(128 * sizeof(double), ecc::Scheme::kNone, "v", true));
  const std::size_t first = rt.register_structure("first", base, 128);
  rt.register_structure("second", base + 64, 64);
  memsim::FaultSite site;
  rig.sys.controller().report_uncorrectable(
      site, *rig.os.virt_to_phys(base + 100), 1, ecc::Scheme::kNone);
  const auto errors = rt.drain_located_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].structure_id, first);
  EXPECT_EQ(errors[0].element_index, 100u);
}

// --- checksum primitives -------------------------------------------------------

TEST(Checksum, ColumnChecksumsMatchDefinition) {
  Rng rng(1);
  Matrix a = Matrix::random(10, 6, rng);
  std::vector<double> sum(6), weighted(6);
  column_checksums(a.view(), sum, weighted, /*row_offset=*/3);
  for (std::size_t j = 0; j < 6; ++j) {
    double s = 0, w = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      s += a(i, j);
      w += static_cast<double>(i + 1 + 3) * a(i, j);
    }
    EXPECT_NEAR(sum[j], s, 1e-12);
    EXPECT_NEAR(weighted[j], w, 1e-12);
  }
}

TEST(Checksum, VerifyColumnsLocatesSingleErrors) {
  Rng rng(2);
  Matrix a = Matrix::random(20, 8, rng);
  std::vector<double> sum(8), weighted(8);
  column_checksums(a.view(), sum, weighted);
  a(13, 2) += 5.0;
  a(4, 6) -= 2.0;
  const auto errors =
      verify_columns(a.view(), sum, weighted, 1e-9, mean_abs(a.view()));
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].column, 2u);
  EXPECT_TRUE(errors[0].locatable);
  EXPECT_EQ(errors[0].row, 13u);
  EXPECT_NEAR(errors[0].magnitude, 5.0, 1e-9);
  EXPECT_EQ(errors[1].column, 6u);
  EXPECT_EQ(errors[1].row, 4u);
}

TEST(Checksum, TwoErrorsSameColumnNotLocatable) {
  Rng rng(3);
  Matrix a = Matrix::random(20, 4, rng);
  std::vector<double> sum(4), weighted(4);
  column_checksums(a.view(), sum, weighted);
  a(3, 1) += 7.0;
  a(15, 1) += 11.0;
  const auto errors =
      verify_columns(a.view(), sum, weighted, 1e-9, mean_abs(a.view()));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_FALSE(errors[0].locatable);
}

TEST(Checksum, RowOffsetRespectedInLocation) {
  Rng rng(4);
  Matrix a = Matrix::random(16, 4, rng);
  std::vector<double> sum(4), weighted(4);
  column_checksums(a.view(), sum, weighted, /*row_offset=*/100);
  a(9, 3) += 2.5;
  const auto errors = verify_columns(a.view(), sum, weighted, 1e-9,
                                     mean_abs(a.view()), 100);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_TRUE(errors[0].locatable);
  EXPECT_EQ(errors[0].row, 9u);
}

TEST(Checksum, CleanMatrixProducesNoErrors) {
  Rng rng(5);
  Matrix a = Matrix::random(12, 12, rng);
  std::vector<double> sum(12), weighted(12);
  column_checksums(a.view(), sum, weighted);
  EXPECT_TRUE(
      verify_columns(a.view(), sum, weighted, 1e-9, mean_abs(a.view()))
          .empty());
}

TEST(PhaseTimerTest, AccumulatesIntoSink) {
  double sink = 0.0;
  {
    PhaseTimer t(sink);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  }
  EXPECT_GT(sink, 0.0);
  const double first = sink;
  { PhaseTimer t(sink); }
  EXPECT_GE(sink, first);
}

TEST(FtStatsTest, OverheadSumsPhases) {
  FtStats st;
  st.encode_seconds = 1.0;
  st.verify_seconds = 2.0;
  st.correct_seconds = 0.5;
  EXPECT_DOUBLE_EQ(st.overhead_seconds(), 3.5);
}

}  // namespace
}  // namespace abftecc::abft
