// Tests for the Monte Carlo fault-injection campaign engine: Wilson
// intervals, the outcome-classification rule, seed determinism across
// thread counts, the two classification edge cases the taxonomy must get
// right (a fault in the checksum row itself, and a fault landing after the
// last verification), and a small smoke campaign per kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>

#include "abft/ft_dgemm.hpp"
#include "campaign/campaign.hpp"
#include "common/matrix.hpp"
#include "linalg/blas.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"

namespace abftecc::campaign {
namespace {

/// Small inputs so a trial costs milliseconds, not seconds.
sim::PlatformOptions tiny_platform() {
  sim::PlatformOptions p;
  p.strategy = sim::Strategy::kPartialChipkillSecded;
  p.dgemm_dim = 48;
  p.cholesky_dim = 48;
  p.cg_dim = 96;
  p.cg_iterations = 2;
  p.hpl_dim = 48;
  return p;
}

// ------------------------------------------------------------- wilson --

TEST(Wilson, EmptySampleIsVacuous) {
  const Interval iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(Wilson, ZeroSuccessesPinLowerBound) {
  const Interval iv = wilson_interval(0, 20);
  EXPECT_EQ(iv.lo, 0.0);
  // Closed form at k = 0: hi = z^2 / (n + z^2).
  EXPECT_NEAR(iv.hi, 1.96 * 1.96 / (20 + 1.96 * 1.96), 1e-9);
}

TEST(Wilson, AllSuccessesMirrorZeroSuccesses) {
  const Interval none = wilson_interval(0, 20);
  const Interval all = wilson_interval(20, 20);
  EXPECT_EQ(all.hi, 1.0);
  EXPECT_NEAR(all.lo, 1.0 - none.hi, 1e-12);
}

TEST(Wilson, HalfSampleIsSymmetricAroundHalf) {
  const Interval iv = wilson_interval(5, 10);
  EXPECT_NEAR(iv.lo + iv.hi, 1.0, 1e-12);
  // Textbook value for 5/10 at 95%.
  EXPECT_NEAR(iv.lo, 0.2366, 5e-4);
  EXPECT_NEAR(iv.hi, 0.7634, 5e-4);
}

TEST(Wilson, IntervalShrinksWithSampleSize) {
  const Interval small = wilson_interval(8, 16);
  const Interval large = wilson_interval(128, 256);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

// ------------------------------------------------------------ classify --

TEST(Classify, ReportedFailuresAreDetectedUncorrected) {
  using abft::FtStatus;
  EXPECT_EQ(classify(FtStatus::kUncorrectable, true, false, 0),
            Outcome::kDetectedUncorrected);
  EXPECT_EQ(classify(FtStatus::kNumericalFailure, true, false, 0),
            Outcome::kDetectedUncorrected);
  // An OS panic dominates even a clean ABFT status.
  EXPECT_EQ(classify(FtStatus::kOk, true, true, 0),
            Outcome::kDetectedUncorrected);
}

TEST(Classify, WrongOutputIsSilentCorruptionEvenAfterCorrections) {
  // A "successful" correction that still leaves the answer wrong must be
  // counted as SDC, not as corrected.
  EXPECT_EQ(classify(abft::FtStatus::kCorrectedErrors, false, false, 3),
            Outcome::kSilentDataCorruption);
  EXPECT_EQ(classify(abft::FtStatus::kOk, false, false, 0),
            Outcome::kSilentDataCorruption);
}

TEST(Classify, CorrectOutputSplitsOnWhetherAnythingWasRepaired) {
  EXPECT_EQ(classify(abft::FtStatus::kOk, true, false, 1),
            Outcome::kCorrected);
  EXPECT_EQ(classify(abft::FtStatus::kCorrectedErrors, true, false, 2),
            Outcome::kCorrected);
  EXPECT_EQ(classify(abft::FtStatus::kOk, true, false, 0),
            Outcome::kBenignMasked);
}

TEST(Classify, LadderTiersNameTheDeepestRecoveryThatFired) {
  using abft::FtStatus;
  // Rollback dominates recompute dominates element correction.
  EXPECT_EQ(classify(FtStatus::kOk, true, false, 0, 1, 0),
            Outcome::kRecoveredByRecompute);
  EXPECT_EQ(classify(FtStatus::kCorrectedErrors, true, false, 2, 1, 0),
            Outcome::kRecoveredByRecompute);
  EXPECT_EQ(classify(FtStatus::kOk, true, false, 0, 0, 1),
            Outcome::kRecoveredByRollback);
  EXPECT_EQ(classify(FtStatus::kOk, true, false, 3, 2, 1),
            Outcome::kRecoveredByRollback);
}

TEST(Classify, UnrecoverableAndFailuresDominateLadderCounts) {
  using abft::FtStatus;
  // An exhausted ladder is its own class even if earlier tiers fired.
  EXPECT_EQ(classify(FtStatus::kUnrecoverable, true, false, 0, 2, 2),
            Outcome::kUnrecoverable);
  // A panic still dominates everything.
  EXPECT_EQ(classify(FtStatus::kUnrecoverable, true, true, 0, 2, 2),
            Outcome::kDetectedUncorrected);
  // A recovery that still left the answer wrong is SDC, not "recovered".
  EXPECT_EQ(classify(FtStatus::kOk, false, false, 0, 1, 1),
            Outcome::kSilentDataCorruption);
}

// --------------------------------------------------------- determinism --

TEST(Campaign, SameSeedIsBitIdenticalAcrossThreadCounts) {
  CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform = tiny_platform();
  opt.trials = 8;
  opt.campaign_seed = 7;

  opt.threads = 1;
  const CampaignResult serial = run_campaign(opt);
  opt.threads = 2;
  const CampaignResult pooled = run_campaign(opt);

  ASSERT_EQ(serial.trials.size(), pooled.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    const TrialOutcome& a = serial.trials[i];
    const TrialOutcome& b = pooled.trials[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.inject_ref, b.inject_ref);
    EXPECT_EQ(a.fault_phys, b.fault_phys);
    EXPECT_EQ(a.fault_bit, b.fault_bit);
    EXPECT_EQ(a.ecc_corrected, b.ecc_corrected);
    EXPECT_EQ(a.ecc_uncorrectable, b.ecc_uncorrectable);
    EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);
    EXPECT_EQ(a.cleared_by_writeback, b.cleared_by_writeback);
    EXPECT_EQ(a.abft_detected, b.abft_detected);
    EXPECT_EQ(a.abft_corrected, b.abft_corrected);
    EXPECT_EQ(a.panicked, b.panicked);
    EXPECT_EQ(a.materialized, b.materialized);
    EXPECT_EQ(a.max_abs_error, b.max_abs_error);
  }
  EXPECT_EQ(serial.corrected.count, pooled.corrected.count);
  EXPECT_EQ(serial.unclassified, pooled.unclassified);
}

/// A fault-storm scenario that historically ended in Os::panic: SECDED
/// everywhere (every double-bit flip is detected-uncorrectable) and sites
/// sampled over all allocations, so plain kernel inputs get hit too.
CampaignOptions storm_options(bool ladder) {
  CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform = tiny_platform();
  opt.platform.strategy = sim::Strategy::kWholeSecded;
  opt.platform.ladder = ladder;
  opt.fault.kind = FaultKind::kDoubleBit;
  opt.fault.count = 3;
  opt.fault.storm_all_ranges = true;
  opt.trials = 12;
  opt.campaign_seed = 7;
  return opt;
}

std::string jsonl_bytes(const CampaignResult& res) {
  std::FILE* f = std::tmpfile();
  for (const TrialOutcome& t : res.trials)
    write_trial_jsonl(f, res.options, t);
  std::string out(static_cast<std::size_t>(std::ftell(f)), '\0');
  std::rewind(f);
  const std::size_t got = std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  out.resize(got);
  return out;
}

// The determinism contract must survive the ladder: a multi-fault storm
// campaign with recovery enabled serializes byte-identically regardless
// of thread count, including the new outcome classes and ladder counters.
TEST(Campaign, LadderStormJsonlIsByteIdenticalAcrossThreadCounts) {
  CampaignOptions opt = storm_options(/*ladder=*/true);
  const GoldenRun golden = run_golden(opt);

  opt.threads = 1;
  const std::string serial = jsonl_bytes(run_campaign(opt, golden));
  opt.threads = 4;
  const std::string four = jsonl_bytes(run_campaign(opt, golden));
  opt.threads = 8;
  const std::string eight = jsonl_bytes(run_campaign(opt, golden));

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, eight);
  // The storm actually exercises the new taxonomy.
  EXPECT_NE(serial.find("recovered_by_rollback"), std::string::npos);
}

// The before/after story of the escalation ladder: the same storm that
// panics with the ladder off finishes every trial with it on, the former
// panics reclassified as recovered or (gracefully) unrecoverable.
TEST(Campaign, LadderTurnsStormPanicsIntoRecoveries) {
  const CampaignResult off = run_campaign(storm_options(/*ladder=*/false));
  ASSERT_GT(off.panicked_trials, 0u);

  const CampaignResult on = run_campaign(storm_options(/*ladder=*/true));
  EXPECT_EQ(on.panicked_trials, 0u);
  EXPECT_GE(on.recovered_by_rollback.count + on.recovered_by_recompute.count +
                on.unrecoverable.count,
            off.panicked_trials);
}

TEST(Campaign, DifferentSeedsPickDifferentFaultSites) {
  CampaignOptions opt;
  opt.kernel = sim::Kernel::kDgemm;
  opt.platform = tiny_platform();
  opt.trials = 4;

  opt.campaign_seed = 7;
  const CampaignResult a = run_campaign(opt);
  opt.campaign_seed = 8;
  const CampaignResult b = run_campaign(opt);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.trials.size(); ++i)
    any_differs = any_differs ||
                  a.trials[i].inject_ref != b.trials[i].inject_ref ||
                  a.trials[i].fault_phys != b.trials[i].fault_phys;
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------- edge cases --

// A fault in the checksum row itself (not the payload) must come back as
// corrected: FtDgemm recomputes the damaged checksum entry from the
// payload instead of "repairing" correct data against a bad checksum.
TEST(Campaign, ChecksumRowFaultIsCorrected) {
  const std::size_t n = 32;
  // Relaxed ECC on ABFT data so the flip reaches the application.
  sim::Session s = sim::Session::Builder()
                       .strategy(sim::Strategy::kPartialChipkillNoEcc)
                       .build();
  Rng rng(5);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtDgemm::Buffers buf{s.abft_matrix(n + 1, n, "Ac"),
                             s.abft_matrix(n, n + 1, "Br"),
                             s.abft_matrix(n + 1, n + 1, "Cf")};
  abft::FtDgemm ft(a.view(), b.view(), buf, abft::FtOptions{}, &s.runtime());
  ASSERT_EQ(ft.run(s.tap()), abft::FtStatus::kOk);

  // Flip a high-mantissa bit (byte 6) of a checksum-row element.
  ASSERT_TRUE(s.injector().corrupt_virtual_now(
      reinterpret_cast<char*>(&buf.cf(n, 3)) + 6, 3));
  const abft::FtStatus st = ft.verify_and_correct(s.tap());
  EXPECT_EQ(st, abft::FtStatus::kCorrectedErrors);

  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const bool correct = max_abs_diff(ft.result(), ref.view()) < 1e-9;
  EXPECT_TRUE(correct);
  EXPECT_EQ(classify(st, correct, s.os().panicked(),
                     ft.stats().errors_corrected),
            Outcome::kCorrected);
}

// A fault that lands after the final verification is the taxonomy's
// canonical silent-data-corruption case: nothing is left to detect it.
TEST(Campaign, FaultAfterLastVerifyIsSilentDataCorruption) {
  const std::size_t n = 32;
  sim::Session s = sim::Session::Builder()
                       .strategy(sim::Strategy::kPartialChipkillNoEcc)
                       .build();
  Rng rng(5);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  abft::FtDgemm::Buffers buf{s.abft_matrix(n + 1, n, "Ac"),
                             s.abft_matrix(n, n + 1, "Br"),
                             s.abft_matrix(n + 1, n + 1, "Cf")};
  abft::FtDgemm ft(a.view(), b.view(), buf, abft::FtOptions{}, &s.runtime());
  const abft::FtStatus st = ft.run(s.tap());  // last verify happens in here
  ASSERT_EQ(st, abft::FtStatus::kOk);

  // Payload flip after the run: a high-mantissa bit so the value moves.
  ASSERT_TRUE(s.injector().corrupt_virtual_now(
      reinterpret_cast<char*>(&buf.cf(3, 4)) + 6, 3));

  Matrix ref(n, n);
  linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
  const bool correct = max_abs_diff(ft.result(), ref.view()) < 1e-9;
  EXPECT_FALSE(correct);
  EXPECT_EQ(classify(st, correct, s.os().panicked(),
                     ft.stats().errors_corrected),
            Outcome::kSilentDataCorruption);
}

// --------------------------------------------------------------- smoke --

// 64 trials per kernel under the cooperative P_CK+P_SD design point with
// single-bit faults: every fault must materialize, and SECDED corrects
// every single-bit flip, so the corrected fraction is exactly 1.
TEST(Campaign, SmokeEveryKernelSingleBitAllCorrected) {
  for (const sim::Kernel k :
       {sim::Kernel::kDgemm, sim::Kernel::kCholesky, sim::Kernel::kCg,
        sim::Kernel::kHpl}) {
    CampaignOptions opt;
    opt.kernel = k;
    opt.platform = tiny_platform();
    opt.trials = 64;
    opt.threads = 2;
    opt.campaign_seed = 7;
    const CampaignResult res = run_campaign(opt);
    EXPECT_EQ(res.unclassified, 0u) << sim::kernel_name(k);
    EXPECT_EQ(res.corrected.count, opt.trials) << sim::kernel_name(k);
    EXPECT_EQ(res.corrected.fraction, 1.0) << sim::kernel_name(k);
    EXPECT_EQ(res.silent_data_corruption.count, 0u) << sim::kernel_name(k);
    EXPECT_EQ(res.rate(Outcome::kCorrected).count, res.corrected.count);
  }
}

}  // namespace
}  // namespace abftecc::campaign
