// Edge cases of the cache-line codec: check-storage corruption, boundary
// chips, mixed fault merging, and the chip_flips expansion used by the
// injector to model simultaneous faults.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/codec.hpp"
#include "ecc/secded.hpp"

namespace abftecc::ecc {
namespace {

std::array<std::uint8_t, kLineBytes> random_line(Rng& rng) {
  std::array<std::uint8_t, kLineBytes> line{};
  for (auto& b : line) b = static_cast<std::uint8_t>(rng.below(256));
  return line;
}

TEST(LineCodecEdge, ChipkillCheckSymbolFlipCorrectedWithoutDataDamage) {
  Rng rng(1);
  auto line = random_line(rng);
  const auto orig = line;
  // Check-bit index space: codeword 1, check symbol 2, bit 5.
  const BitFlip flip{1 * Chipkill::kCheckSymbols * 8 + 2 * 8 + 5, true};
  const auto res = LineCodec::process_line(Scheme::kChipkill, line, {&flip, 1});
  EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  EXPECT_EQ(line, orig);
  EXPECT_FALSE(res.silent_corruption);
}

TEST(LineCodecEdge, ChipkillCheckChipKillCorrected) {
  Rng rng(2);
  for (unsigned chip = 0; chip < Chipkill::kCheckSymbols; ++chip) {
    auto line = random_line(rng);
    const auto orig = line;
    const auto res = LineCodec::kill_chip(Scheme::kChipkill, line, chip, 0xF);
    EXPECT_EQ(res.status, DecodeStatus::kCorrected) << chip;
    EXPECT_EQ(line, orig);
  }
}

TEST(LineCodecEdge, SecdedCheckChipKillDetectedOrCorrected) {
  // Chips 16 and 17 hold the SECDED check bits; a full kill corrupts 4
  // check bits per word -- even-weight syndrome, detected.
  Rng rng(3);
  auto line = random_line(rng);
  const auto res = LineCodec::kill_chip(Scheme::kSecded, line, 17, 0xF);
  EXPECT_EQ(res.status, DecodeStatus::kDetectedUncorrectable);
  // A single stuck check-bit line: corrected, data untouched.
  auto line2 = random_line(rng);
  const auto orig2 = line2;
  const auto res2 = LineCodec::kill_chip(Scheme::kSecded, line2, 16, 0x1);
  EXPECT_EQ(res2.status, DecodeStatus::kCorrected);
  EXPECT_EQ(line2, orig2);
}

TEST(LineCodecEdge, FourBitChipPatternMayAliasSilentlyUnderSecded) {
  // Documented SECDED limit: the four columns of one x4 chip can XOR to
  // zero, turning a whole-chip failure into silent corruption -- one of
  // the Case-2 scenarios that motivate chipkill (Section 4).
  Rng rng(4);
  auto line = random_line(rng);
  const auto orig = line;
  const auto res = LineCodec::kill_chip(Scheme::kSecded, line, 4, 0xF);
  EXPECT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_TRUE(res.silent_corruption);
  EXPECT_NE(line, orig);
}

TEST(LineCodecEdge, MergedFlipsOnTwoChipsBeatChipkill) {
  // The injector merges simultaneous faults into one decode: two chips'
  // worth of flips in one pass must be DETECTED, not corrected pairwise.
  Rng rng(5);
  auto line = random_line(rng);
  std::vector<BitFlip> flips;
  for (const unsigned chip : {8u, 9u})
    for (const auto& f : LineCodec::chip_flips(Scheme::kChipkill, chip, 0x3))
      flips.push_back(f);
  const auto res = LineCodec::process_line(Scheme::kChipkill, line, flips);
  EXPECT_EQ(res.status, DecodeStatus::kDetectedUncorrectable);
}

TEST(LineCodecEdge, ChipFlipsGeometryPerScheme) {
  // x4 data chip under SECDED: 4 bits in each of 8 words = 32 flips.
  EXPECT_EQ(LineCodec::chip_flips(Scheme::kSecded, 3, 0xF).size(), 32u);
  EXPECT_EQ(LineCodec::chip_flips(Scheme::kSecded, 3, 0x1).size(), 8u);
  // Chipkill chip: one byte per codeword half = 16 bit flips at 0xF
  // (pattern replicated to both nibbles).
  EXPECT_EQ(LineCodec::chip_flips(Scheme::kChipkill, 10, 0xF).size(), 16u);
  // No-ECC chip: data bits only.
  EXPECT_EQ(LineCodec::chip_flips(Scheme::kNone, 15, 0xF).size(), 32u);
}

TEST(LineCodecEdge, BoundaryChipsAccepted) {
  Rng rng(6);
  auto line = random_line(rng);
  EXPECT_NO_THROW(LineCodec::kill_chip(Scheme::kNone, line, 15));
  EXPECT_NO_THROW(LineCodec::kill_chip(Scheme::kSecded, line, 17));
  EXPECT_NO_THROW(LineCodec::kill_chip(Scheme::kChipkill, line, 35));
  EXPECT_THROW(LineCodec::kill_chip(Scheme::kNone, line, 16),
               ContractViolation);
  EXPECT_THROW(LineCodec::kill_chip(Scheme::kSecded, line, 18),
               ContractViolation);
  EXPECT_THROW(LineCodec::kill_chip(Scheme::kChipkill, line, 36),
               ContractViolation);
}

TEST(LineCodecEdge, EmptyFlipListIsClean) {
  Rng rng(7);
  auto line = random_line(rng);
  const auto orig = line;
  const auto res = LineCodec::process_line(Scheme::kSecded, line, {});
  EXPECT_EQ(res.status, DecodeStatus::kOk);
  EXPECT_EQ(line, orig);
}

TEST(LineCodecEdge, AllSchemesHandleFlipInLastByte) {
  Rng rng(8);
  for (const auto scheme :
       {Scheme::kNone, Scheme::kSecded, Scheme::kChipkill}) {
    auto line = random_line(rng);
    const BitFlip flip{511, false};
    const auto res = LineCodec::process_line(scheme, line, {&flip, 1});
    if (scheme == Scheme::kNone)
      EXPECT_TRUE(res.silent_corruption);
    else
      EXPECT_EQ(res.status, DecodeStatus::kCorrected);
  }
}

}  // namespace
}  // namespace abftecc::ecc
