// FT-CG: convergence, invariant-based detection, restart recovery, and the
// static checksum protection of b.
#include <gtest/gtest.h>

#include "abft/ft_cg.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  linalg::LinearSystem sys;
  std::vector<double> b, x, r, z, p, q;
  explicit Fix(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    sys = linalg::make_spd_system(n, rng);
    b = sys.b;
    x.assign(n, 0.0);
    r.assign(n, 0.0);
    z.assign(n, 0.0);
    p.assign(n, 0.0);
    q.assign(n, 0.0);
  }
  FtCg::Buffers buffers() { return {x, r, z, p, q}; }
  [[nodiscard]] double solution_error() const {
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      m = std::max(m, std::abs(x[i] - sys.x_true[i]));
    return m;
  }
};

linalg::CgOptions tight(std::size_t n) {
  linalg::CgOptions o;
  o.max_iterations = 6 * n;
  o.tolerance = 1e-12;
  return o;
}

TEST(FtCg, CleanSolveConverges) {
  Fix s(64, 1);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(64));
  const FtCgResult res = ft.run();
  EXPECT_TRUE(res.cg.converged);
  EXPECT_EQ(res.status, FtStatus::kOk);
  EXPECT_LT(s.solution_error(), 1e-8);
  EXPECT_EQ(ft.stats().errors_detected, 0u);
}

class FtCgSizes : public ::testing::TestWithParam<int> {};

TEST_P(FtCgSizes, ConvergesAcrossDims) {
  const int n = GetParam();
  Fix s(n, 50 + n);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(n));
  const FtCgResult res = ft.run();
  EXPECT_TRUE(res.cg.converged);
  EXPECT_LT(s.solution_error(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Dims, FtCgSizes, ::testing::Values(4, 16, 64, 150));

// A tap that flips one value after a given number of references.
struct CorruptingTap {
  double* target;
  double delta;
  std::uint64_t* counter;
  std::uint64_t fire_at;
  void read(const void*, std::size_t = 8) { tick(); }
  void write(const void*, std::size_t = 8) { tick(); }
  void update(const void*, std::size_t = 8) { tick(); }
  void tick() {
    if (++*counter == fire_at) *target += delta;
  }
};

TEST(FtCg, ResidualCorruptionDetectedAndSolveStillConverges) {
  Fix s(96, 2);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(96));
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.r[40], 50.0, &counter, 200000};
  const FtCgResult res = ft.run(tap);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_EQ(res.status, FtStatus::kCorrectedErrors);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  EXPECT_LT(s.solution_error(), 1e-7);
}

TEST(FtCg, IterateCorruptionRecoveredByRestart) {
  Fix s(96, 3);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(96));
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.x[10], 1e3, &counter, 300000};
  const FtCgResult res = ft.run(tap);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_GE(ft.stats().errors_detected, 1u);
  EXPECT_LT(s.solution_error(), 1e-7);
}

TEST(FtCg, DirectionVectorCorruptionRecovered) {
  Fix s(96, 4);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(96));
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.p[5], -200.0, &counter, 250000};
  const FtCgResult res = ft.run(tap);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_LT(s.solution_error(), 1e-7);
}

TEST(FtCg, NonFiniteIterateSanitizedAndRecovered) {
  Fix s(64, 5);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(64));
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.x[3], std::numeric_limits<double>::infinity(),
                    &counter, 150000};
  const FtCgResult res = ft.run(tap);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_LT(s.solution_error(), 1e-7);
}

TEST(FtCg, RhsCorruptionRepairedFromStaticChecksum) {
  Fix s(96, 6);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(96));
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.b[60], 25.0, &counter, 220000};
  const FtCgResult res = ft.run(tap);
  EXPECT_TRUE(res.cg.converged);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  // b repaired, so the converged solution solves the ORIGINAL system.
  EXPECT_LT(s.solution_error(), 1e-7);
  EXPECT_NEAR(s.b[60], s.sys.b[60], 1e-9);
}

TEST(FtCg, VerificationIsPeriodic) {
  Fix s(64, 7);
  FtOptions opt;
  opt.verify_period = 2;
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(64), opt);
  const FtCgResult res = ft.run();
  EXPECT_TRUE(res.cg.converged);
  // At least iterations/period verifications (plus the convergence guard).
  EXPECT_GE(ft.stats().verifications, res.cg.iterations / 2);
}

TEST(FtCg, CorruptionJustBeforeConvergenceCaughtByFinalGuard) {
  // Fire extremely late: the final pre-convergence verification must still
  // catch the inconsistency rather than reporting a corrupted solution.
  Fix s(64, 8);
  FtCg ft(s.sys.a.view(), s.b, s.buffers(), tight(64));
  // First, learn how many refs a clean run makes.
  Fix probe(64, 8);
  FtCg clean(probe.sys.a.view(), probe.b, probe.buffers(), tight(64));
  std::uint64_t total = 0;
  struct CountTap {
    std::uint64_t* c;
    void read(const void*, std::size_t = 8) { ++*c; }
    void write(const void*, std::size_t = 8) { ++*c; }
    void update(const void*, std::size_t = 8) { ++*c; }
  };
  ASSERT_TRUE(clean.run(CountTap{&total}).cg.converged);
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.x[20], 77.0, &counter, total * 95 / 100};
  const FtCgResult res = ft.run(tap);
  if (res.cg.converged) {
    EXPECT_LT(s.solution_error(), 1e-6);
  }
}

}  // namespace
}  // namespace abftecc::abft
