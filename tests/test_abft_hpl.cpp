// FT-HPL: solver correctness, fail-stop loss + recovery at every stage of
// the factorization, checksum maintenance through pivoting, soft-error
// detection over the trailing matrix.
#include <gtest/gtest.h>

#include "abft/ft_hpl.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  linalg::LinearSystem sys;
  Matrix ae, uc;
  std::size_t n, procs, h;
  Fix(std::size_t n_, std::size_t procs_, std::uint64_t seed)
      : n(n_), procs(procs_), h(n_ / procs_) {
    Rng rng(seed);
    sys = linalg::make_general_system(n, rng);
    ae = Matrix(n + h, n + 1);
    uc = Matrix(h, n + 1);
  }
  FtHpl::Buffers buffers() { return {ae.view(), uc.view()}; }
  void expect_solution(FtHpl& ft, double tol = 1e-7) {
    std::vector<double> x(n);
    ft.solve(x);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(x[i], sys.x_true[i], tol) << i;
  }
};

TEST(FtHpl, CleanFactorizationSolvesSystem) {
  Fix s(128, 4, 1);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  EXPECT_EQ(ft.factor(), FtStatus::kOk);
  s.expect_solution(ft);
}

class FtHplShapes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FtHplShapes, SolvesAcrossDimsAndProcessCounts) {
  const auto [n, procs] = GetParam();
  Fix s(n, procs, 40 + n + procs);
  FtHpl ft(s.sys.a.view(), s.sys.b, procs, s.buffers(), {}, nullptr, 32);
  EXPECT_EQ(ft.factor(), FtStatus::kOk);
  s.expect_solution(ft);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FtHplShapes,
                         ::testing::Values(std::tuple{64, 2}, std::tuple{64, 4},
                                           std::tuple{96, 4}, std::tuple{128, 8},
                                           std::tuple{160, 5}));

class FtHplFailurePoint : public ::testing::TestWithParam<int> {};

TEST_P(FtHplFailurePoint, FailStopRecoveredAtAnyBoundary) {
  // Lose process 1 after `frac`% of the factorization; recovery must
  // restore the exact state and the solve must match.
  const int percent = GetParam();
  const std::size_t n = 128;
  Fix s(n, 4, 2);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  const std::size_t k_fail = n * percent / 100 / 32 * 32;
  ASSERT_EQ(ft.factor_steps(k_fail), FtStatus::kOk);
  ft.simulate_failstop(1);
  EXPECT_EQ(ft.recover_process(1), FtStatus::kCorrectedErrors);
  ASSERT_EQ(ft.factor_steps(n), FtStatus::kOk);
  s.expect_solution(ft, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, FtHplFailurePoint,
                         ::testing::Values(0, 25, 50, 75, 100));

TEST(FtHpl, EveryProcessRecoverable) {
  const std::size_t n = 96;
  for (std::size_t victim = 0; victim < 4; ++victim) {
    Fix s(n, 4, 3 + victim);
    FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
    ASSERT_EQ(ft.factor_steps(64), FtStatus::kOk);
    ft.simulate_failstop(victim);
    EXPECT_EQ(ft.recover_process(victim), FtStatus::kCorrectedErrors);
    ASSERT_EQ(ft.factor_steps(n), FtStatus::kOk);
    s.expect_solution(ft, 1e-6);
  }
}

TEST(FtHpl, RecoveryRestoresExactRowContents) {
  const std::size_t n = 96;
  Fix s(n, 4, 5);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  Matrix snapshot = s.ae;
  ft.simulate_failstop(2);
  ASSERT_EQ(ft.recover_process(2), FtStatus::kCorrectedErrors);
  // Frozen rows restored exactly; active rows restored from column 32 on.
  for (std::size_t o = 2 * 24; o < 3 * 24; ++o) {
    const std::size_t pos = ft.position_of_original_row(o);
    const std::size_t j0 = pos < 32 ? 0 : 32;
    for (std::size_t j = j0; j < n + 1; ++j)
      ASSERT_NEAR(s.ae(pos, j), snapshot(pos, j), 1e-8) << pos << "," << j;
  }
}

TEST(FtHpl, SoftErrorInTrailingMatrixDetected) {
  const std::size_t n = 96;
  Fix s(n, 4, 6);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(32), FtStatus::kOk);
  s.ae(70, 80) += 50.0;  // active region corruption
  EXPECT_EQ(ft.verify_active(), FtStatus::kUncorrectable);
  EXPECT_GE(ft.stats().errors_detected, 1u);
}

TEST(FtHpl, CleanTrailingMatrixVerifies) {
  Fix s(96, 4, 7);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor_steps(64), FtStatus::kOk);
  EXPECT_EQ(ft.verify_active(), FtStatus::kOk);
}

TEST(FtHpl, SingularMatrixReported) {
  const std::size_t n = 32;
  Fix s(n, 4, 8);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) s.sys.a(i, j) = 0.0;
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 16);
  EXPECT_EQ(ft.factor(), FtStatus::kNumericalFailure);
}

TEST(FtHpl, RequiresDivisibleDimensions) {
  Fix s(96, 4, 9);
  EXPECT_THROW(FtHpl(s.sys.a.view(), s.sys.b, 5,
                     {s.ae.view(), s.uc.view()}),
               ContractViolation);
}

TEST(FtHpl, PivotTrackingConsistent) {
  const std::size_t n = 64;
  Fix s(n, 4, 10);
  FtHpl ft(s.sys.a.view(), s.sys.b, 4, s.buffers(), {}, nullptr, 16);
  ASSERT_EQ(ft.factor(), FtStatus::kOk);
  // position_of_original_row is a permutation of [0, n).
  std::vector<bool> seen(n, false);
  for (std::size_t o = 0; o < n; ++o) {
    const std::size_t pos = ft.position_of_original_row(o);
    ASSERT_LT(pos, n);
    ASSERT_FALSE(seen[pos]);
    seen[pos] = true;
  }
}

}  // namespace
}  // namespace abftecc::abft
