// Fault layer: injector end-to-end through DRAM fills + ECC decode + MC
// error registers + OS interrupt, plus the Section 4 analytical models and
// Case 1-4 classification.
#include <gtest/gtest.h>

#include <cstring>

#include "fault/injector.hpp"
#include "fault/model.hpp"
#include "fault/scenario.hpp"
#include "memsim/system.hpp"
#include "os/os.hpp"

namespace abftecc::fault {
namespace {

struct Rig {
  memsim::MemorySystem sys;
  os::Os os;
  Injector inj;
  explicit Rig(ecc::Scheme default_scheme)
      : sys(memsim::SystemConfig::scaled(8), default_scheme),
        os(sys),
        inj(sys, os) {}

  /// Allocate one ABFT-protected page with `scheme`, fill with a pattern.
  std::uint8_t* alloc(ecc::Scheme scheme) {
    auto* p = static_cast<std::uint8_t*>(
        os.malloc_ecc(4096, scheme, "data", true));
    for (int i = 0; i < 4096; ++i) p[i] = static_cast<std::uint8_t>(i * 7);
    return p;
  }

  void touch_line(const void* vaddr) {
    const auto phys = os.virt_to_phys(vaddr);
    ASSERT_TRUE(phys.has_value());
    sys.access(*phys, memsim::AccessKind::kRead);
  }
};

TEST(Injector, SecdedCorrectsSingleBitOnFill) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const std::uint8_t before = p[10];
  const auto phys = rig.os.virt_to_phys(p + 10);
  rig.inj.inject_bit(*phys, 3);
  rig.touch_line(p + 10);  // fill applies + decodes
  EXPECT_EQ(p[10], before);  // corrected
  EXPECT_EQ(rig.inj.stats().corrected_by_ecc, 1u);
  EXPECT_EQ(rig.sys.controller().corrected_count(), 1u);
  EXPECT_EQ(rig.inj.stats().uncorrectable, 0u);
  EXPECT_FALSE(rig.os.has_exposed_errors());
}

TEST(Injector, NoEccCorruptionIsSilent) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kNone);
  const std::uint8_t before = p[100];
  const auto phys = rig.os.virt_to_phys(p + 100);
  rig.inj.inject_bit(*phys, 0);
  rig.touch_line(p + 100);
  EXPECT_EQ(p[100], static_cast<std::uint8_t>(before ^ 1u));
  EXPECT_EQ(rig.inj.stats().silent_corruptions, 1u);
  EXPECT_FALSE(rig.os.has_exposed_errors());
  EXPECT_FALSE(rig.os.panicked());
}

TEST(Injector, SecdedDoubleBitRaisesInterruptAndExposure) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_bit(*phys, 0);
  rig.inj.inject_bit(*phys + 1, 1);  // same 64-bit word, second bit
  rig.touch_line(p);
  EXPECT_EQ(rig.inj.stats().uncorrectable, 1u);
  EXPECT_EQ(rig.sys.controller().uncorrectable_count(), 1u);
  ASSERT_TRUE(rig.os.has_exposed_errors());
  const auto errors = rig.os.drain_exposed_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].scheme, ecc::Scheme::kSecded);
  // Fault site recorded with the line's DRAM coordinates.
  EXPECT_EQ(errors[0].phys_addr / 64 * 64, *phys / 64 * 64);
}

TEST(Injector, UncorrectableOutsideAbftPanics) {
  Rig rig(ecc::Scheme::kSecded);
  auto* p = static_cast<std::uint8_t*>(rig.os.malloc_plain(4096, "os-data"));
  std::memset(p, 0x5A, 4096);
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_bit(*phys, 0);
  rig.inj.inject_bit(*phys + 1, 1);
  rig.sys.access(*phys, memsim::AccessKind::kRead);
  EXPECT_TRUE(rig.os.panicked());
  EXPECT_FALSE(rig.os.has_exposed_errors());
}

TEST(Injector, ChipKillSurvivedUnderChipkillEcc) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kChipkill);
  const std::uint8_t before = p[0];
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_chip_kill(*phys, 7);
  rig.touch_line(p);
  EXPECT_EQ(p[0], before);
  EXPECT_GE(rig.inj.stats().corrected_by_ecc, 1u);
  EXPECT_EQ(rig.inj.stats().uncorrectable, 0u);
}

TEST(Injector, ChipKillFatalUnderSecded) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const auto phys = rig.os.virt_to_phys(p);
  rig.inj.inject_chip_kill(*phys, 3);
  rig.touch_line(p);
  EXPECT_EQ(rig.inj.stats().uncorrectable, 1u);
  EXPECT_TRUE(rig.os.has_exposed_errors());
}

TEST(Injector, WritebackClearsPendingFault) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kSecded);
  const auto phys = rig.os.virt_to_phys(p);
  // Load the line into the caches first, THEN inject: the fault sits in
  // DRAM while the cached copy is clean.
  rig.sys.access(*phys, memsim::AccessKind::kWrite);  // dirty in L1
  rig.inj.inject_bit(*phys, 2);
  EXPECT_EQ(rig.inj.pending_lines(), 1u);
  // Push the dirty line out: stream over the caches.
  const auto span = 4 * rig.sys.config().l2.size_bytes;
  for (std::uint64_t a = 1 << 20; a < (1 << 20) + span; a += 64)
    rig.sys.access(a, memsim::AccessKind::kWrite);
  EXPECT_EQ(rig.inj.pending_lines(), 0u);
  EXPECT_GE(rig.inj.stats().cleared_by_writeback, 1u);
  EXPECT_EQ(rig.inj.stats().corrected_by_ecc, 0u);
}

TEST(Injector, CorruptVirtualNowBypassesEcc) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kChipkill);
  const std::uint8_t before = p[5];
  rig.inj.corrupt_virtual_now(p + 5, 4);
  EXPECT_EQ(p[5], static_cast<std::uint8_t>(before ^ 0x10));
}

TEST(Injector, UniformInjectionAndFlush) {
  Rig rig(ecc::Scheme::kChipkill);
  auto* p = rig.alloc(ecc::Scheme::kNone);
  const auto phys = rig.os.virt_to_phys(p);
  Rng rng(7);
  rig.inj.inject_uniform(*phys, *phys + 4096, 20, rng);
  EXPECT_EQ(rig.inj.stats().injected_flips, 20u);
  rig.inj.flush_pending();
  EXPECT_EQ(rig.inj.pending_lines(), 0u);
  EXPECT_GE(rig.inj.stats().silent_corruptions, 1u);
}

TEST(Injector, ExpectedFaultsMatchesHandComputation) {
  // 1 GB at 5000 FIT/Mbit for one hour.
  const double mbit = 1024.0 * 1024 * 1024 * 8 / 1e6;
  const double expected = 5000.0 * mbit / 1e9;  // failures per hour
  EXPECT_NEAR(Injector::expected_faults(1ull << 30, 3600.0,
                                        FitPerMbit{5000.0}),
              expected, expected * 1e-9);
}

// --- Analytical models (Eqs 2-8) --------------------------------------------

TEST(Model, MttfInverseInCapacityAndNodes) {
  const auto rate = FitPerMbit{1000.0};
  const double m1 = mttf_seconds(rate, 100.0, 1.0, 1.0);
  EXPECT_NEAR(mttf_seconds(rate, 200.0, 1.0, 1.0), m1 / 2, m1 * 1e-12);
  EXPECT_NEAR(mttf_seconds(rate, 100.0, 1.0, 10.0), m1 / 10, m1 * 1e-12);
  EXPECT_NEAR(mttf_seconds(rate, 100.0, 2.0, 1.0), m1 / 2, m1 * 1e-12);
}

TEST(Model, HeterogeneousMttfCombinesRegions) {
  std::vector<RegionSpec> regions{{100.0, FitPerMbit{1000.0}, 1.0},
                                  {100.0, FitPerMbit{1000.0}, 1.0}};
  const double hetero = mttf_hetero_seconds(regions, 1.0);
  const double single = mttf_seconds(FitPerMbit{1000.0}, 100.0, 1.0, 1.0);
  EXPECT_NEAR(hetero, single / 2, single * 1e-12);
}

TEST(Model, ExpectedErrorsEquation4) {
  // T0=1000s, tau=0.1, MTTF=100s -> 11 errors.
  EXPECT_NEAR(expected_errors(1000.0, 0.1, 100.0), 11.0, 1e-9);
}

TEST(Model, ThresholdEquation7) {
  // t_c=2s, tau_are=0.0, tau_ase=0.1 -> threshold 20s.
  EXPECT_NEAR(mttf_threshold_perf(2.0, 0.0, 0.1), 20.0, 1e-12);
  // Benefit > loss exactly at the threshold.
  const double mttf = 20.0;
  const double ne = expected_errors(1000.0, 0.0, mttf);
  EXPECT_NEAR(recovery_time_loss(ne, 2.0),
              performance_benefit(1000.0, 0.1, 0.0), 1e-9);
}

TEST(Model, ThresholdEquation8TakesMax) {
  EXPECT_DOUBLE_EQ(mttf_threshold(10.0, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(mttf_threshold(50.0, 30.0), 50.0);
}

TEST(Model, EnergyThresholdScalesWithRecoveryCost) {
  const double t1 = mttf_threshold_energy(10.0, 100.0, 0.0, 1000.0);
  const double t2 = mttf_threshold_energy(20.0, 100.0, 0.0, 1000.0);
  EXPECT_NEAR(t2, 2 * t1, 1e-12);
}

// --- Case classification -----------------------------------------------------

TEST(Scenario, FourCasesClassified) {
  EXPECT_EQ(classify(true, true), Case::kCase1BothCorrect);
  EXPECT_EQ(classify(false, true), Case::kCase2AbftOnly);
  EXPECT_EQ(classify(true, false), Case::kCase3EccOnly);
  EXPECT_EQ(classify(false, false), Case::kCase4Neither);
}

TEST(Scenario, OutcomesFollowSection4) {
  auto o1 = outcome(Case::kCase1BothCorrect);
  EXPECT_EQ(o1.are, RecoveryPath::kAbftCorrection);
  EXPECT_EQ(o1.ase, RecoveryPath::kEccInController);
  auto o2 = outcome(Case::kCase2AbftOnly, false);
  EXPECT_EQ(o2.ase, RecoveryPath::kCheckpointRestart);
  auto o2b = outcome(Case::kCase2AbftOnly, true);
  EXPECT_EQ(o2b.ase, RecoveryPath::kAbftCorrection);
  auto o3 = outcome(Case::kCase3EccOnly);
  EXPECT_EQ(o3.are, RecoveryPath::kCheckpointRestart);
  auto o4 = outcome(Case::kCase4Neither);
  EXPECT_EQ(o4.are, RecoveryPath::kCheckpointRestart);
  EXPECT_EQ(o4.ase, RecoveryPath::kCheckpointRestart);
}

TEST(Scenario, RecoveryCostsOrdering) {
  RecoveryCosts costs{1.0, 50.0, 5000.0};
  EXPECT_LT(costs.joules(RecoveryPath::kEccInController),
            costs.joules(RecoveryPath::kAbftCorrection));
  EXPECT_LT(costs.joules(RecoveryPath::kAbftCorrection),
            costs.joules(RecoveryPath::kCheckpointRestart));
  EXPECT_DOUBLE_EQ(costs.joules(RecoveryPath::kNone), 0.0);
}

}  // namespace
}  // namespace abftecc::fault
