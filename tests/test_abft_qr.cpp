// Plain Householder QR substrate + FT-QR: factorization correctness,
// checksum-column invariance under reflectors, error correction in R and
// the trailing matrix, tall least-squares shapes.
#include <gtest/gtest.h>

#include "abft/ft_qr.hpp"
#include "common/rng.hpp"
#include "linalg/generate.hpp"
#include "linalg/qr.hpp"

namespace abftecc {
namespace {

using abft::FtQr;
using abft::FtStatus;

// --- plain QR substrate -------------------------------------------------------

TEST(Geqrf, ReconstructsViaQtA) {
  Rng rng(1);
  Matrix a = Matrix::random(12, 8, rng);
  Matrix work = a;
  std::vector<double> tau(8);
  linalg::geqrf(work.view(), tau);
  // Q^T A must equal [R; 0]: apply Q^T to each original column.
  for (std::size_t j = 0; j < 8; ++j) {
    std::vector<double> col(12);
    for (std::size_t i = 0; i < 12; ++i) col[i] = a(i, j);
    linalg::apply_qt(work.view(), tau, col);
    for (std::size_t i = 0; i < 12; ++i) {
      const double expect = i <= j ? work(i, j) : 0.0;
      EXPECT_NEAR(col[i], expect, 1e-9) << i << "," << j;
    }
  }
}

TEST(Geqrf, QtPreservesNorms) {
  Rng rng(2);
  Matrix a = Matrix::random(16, 16, rng);
  Matrix work = a;
  std::vector<double> tau(16);
  linalg::geqrf(work.view(), tau);
  std::vector<double> y(16);
  for (auto& v : y) v = rng.uniform(-1, 1);
  const double before = linalg::nrm2<>(y);
  linalg::apply_qt(work.view(), tau, y);
  EXPECT_NEAR(linalg::nrm2<>(y), before, 1e-10);  // orthogonality
}

class QrSolveSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrSolveSizes, SolvesSquareAndLeastSquares) {
  const auto [m, n] = GetParam();
  Rng rng(10 + m + n);
  Matrix a = Matrix::random(m, n, rng);
  for (int i = 0; i < n; ++i) a(i, i) += n;  // well-conditioned
  std::vector<double> x_true(n), b(m, 0.0);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  Matrix work = a;
  std::vector<double> tau(n), x(n);
  linalg::geqrf(work.view(), tau);
  linalg::qr_solve(work.view(), tau, b, x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrSolveSizes,
                         ::testing::Values(std::tuple{8, 8}, std::tuple{16, 16},
                                           std::tuple{24, 16},
                                           std::tuple{64, 40},
                                           std::tuple{100, 100}));

// --- FT-QR ---------------------------------------------------------------------

struct Fix {
  Matrix a, aw;
  std::vector<double> tau;
  std::size_t m, n;
  Fix(std::size_t m_, std::size_t n_, std::uint64_t seed) : m(m_), n(n_) {
    Rng rng(seed);
    a = Matrix::random(m, n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
    aw = Matrix(m, n + 2);
    tau.assign(n, 0.0);
  }
  FtQr::Buffers buffers() { return {aw.view(), tau}; }
};

TEST(FtQrTest, CleanFactorSolvesSystem) {
  Fix s(96, 96, 1);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  EXPECT_EQ(ft.factor(), FtStatus::kOk);
  Rng rng(2);
  std::vector<double> x_true(96), b(96, 0.0), x(96);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < 96; ++i)
    for (std::size_t j = 0; j < 96; ++j) b[i] += s.a(i, j) * x_true[j];
  ft.solve(b, x);
  for (std::size_t i = 0; i < 96; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(FtQrTest, ChecksumColumnsSurviveReflectorsExactly) {
  Fix s(64, 48, 3);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 16);
  ASSERT_EQ(ft.factor(), FtStatus::kOk);
  // Final state: every frozen row's R entries sum to the checksum entries.
  for (std::size_t i = 0; i < 48; ++i) {
    double sum = 0.0, wsum = 0.0;
    for (std::size_t j = i; j < 48; ++j) {
      sum += s.aw(i, j);
      wsum += static_cast<double>(j + 1) * s.aw(i, j);
    }
    EXPECT_NEAR(sum, s.aw(i, 48), 1e-6) << i;
    EXPECT_NEAR(wsum, s.aw(i, 49), 1e-4) << i;
  }
}

TEST(FtQrTest, TrailingErrorCorrectedBetweenPanels) {
  struct CorruptingTap {
    double* target;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) *target += 200.0;
    }
  };
  Fix s(96, 96, 4);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  std::uint64_t counter = 0;
  CorruptingTap tap{&s.aw(80, 70), &counter, 150000};
  const FtStatus st = ft.factor(tap);
  EXPECT_EQ(st, FtStatus::kCorrectedErrors);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  // Solve still lands on the true solution.
  Rng rng(5);
  std::vector<double> x_true(96), b(96, 0.0), x(96);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < 96; ++i)
    for (std::size_t j = 0; j < 96; ++j) b[i] += s.a(i, j) * x_true[j];
  ft.solve(b, x);
  for (std::size_t i = 0; i < 96; ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(FtQrTest, FrozenRErrorCorrectedToo) {
  Fix s(96, 96, 6);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor(), FtStatus::kOk);
  const double orig = s.aw(10, 50);
  s.aw(10, 50) += 77.0;  // R region, row 10 frozen long ago
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kOk);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  EXPECT_NEAR(s.aw(10, 50), orig, 1e-8);
}

TEST(FtQrTest, ChecksumEntryCorruptionRefreshed) {
  Fix s(64, 64, 7);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor(), FtStatus::kOk);
  s.aw(20, 64) += 9.0;   // sum checksum entry
  s.aw(31, 65) -= 4.0;   // weighted checksum entry
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kOk);
  EXPECT_GE(ft.stats().errors_corrected, 2u);
  // A second pass finds nothing.
  const auto corrected = ft.stats().errors_corrected;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kOk);
  EXPECT_EQ(ft.stats().errors_corrected, corrected);
}

TEST(FtQrTest, TwoErrorsSameRowRefused) {
  Fix s(64, 64, 8);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.factor(), FtStatus::kOk);
  s.aw(15, 30) += 5.0;
  s.aw(15, 50) += 7.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kUncorrectable);
}

TEST(FtQrTest, TallMatrixSupported) {
  Fix s(128, 64, 9);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 32);
  EXPECT_EQ(ft.factor(), FtStatus::kOk);
}

class FtQrRandomInjection : public ::testing::TestWithParam<int> {};

TEST_P(FtQrRandomInjection, LiveRegionErrorsAtBoundariesAlwaysRepaired) {
  // FT-QR's contract: an error striking the checksummed LIVE region (R
  // rows' upper parts + the trailing block) is repaired at the next
  // verification. Errors consumed inside a panel produce a consistent QR
  // of corrupted data -- invisible to any invariant -- and errors in the
  // Householder-vector storage are outside the relation; both are out of
  // contract (see the class comment), so the sweep injects at block
  // boundaries into the live region.
  const int seed = GetParam();
  Rng rng(6000 + seed);
  Fix s(80, 80, 700 + seed);
  FtQr ft(s.a.view(), s.buffers(), {}, nullptr, 16);
  const std::size_t boundary = 16 * (1 + rng.below(4));
  ASSERT_EQ(ft.factor_steps(boundary), FtStatus::kOk);
  // Live region at this boundary: row i has columns [min(i, boundary), n).
  const std::size_t i = rng.below(80);
  const std::size_t j0 = std::min<std::size_t>(i, boundary);
  const std::size_t j = j0 + rng.below(80 - j0);
  s.aw(i, j) += rng.uniform(20.0, 400.0) * (rng.below(2) ? 1 : -1);
  ASSERT_EQ(ft.factor_steps(80), FtStatus::kOk);
  ASSERT_EQ(ft.verify_and_correct(), FtStatus::kOk);
  EXPECT_GE(ft.stats().errors_corrected, 1u) << "seed " << seed;

  // Solve lands on the true solution of the ORIGINAL system.
  std::vector<double> x_true(80), b(80, 0.0), x(80);
  Rng rng2(1);
  for (auto& v : x_true) v = rng2.uniform(-1, 1);
  for (std::size_t r = 0; r < 80; ++r)
    for (std::size_t c = 0; c < 80; ++c) b[r] += s.a(r, c) * x_true[c];
  ft.solve(b, x);
  for (std::size_t r = 0; r < 80; ++r)
    ASSERT_NEAR(x[r], x_true[r], 1e-5) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtQrRandomInjection, ::testing::Range(0, 16));

}  // namespace
}  // namespace abftecc
