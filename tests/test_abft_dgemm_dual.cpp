// FT-DGEMM with dual checksum vectors: multi-error correction, including
// the grid patterns the single-checksum code must refuse.
#include <gtest/gtest.h>

#include "abft/ft_dgemm.hpp"
#include "abft/ft_dgemm_dual.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  Matrix a, b, ac, br, cf;
  Fix(std::size_t m, std::size_t n, std::size_t k, std::uint64_t seed)
      : a(m, k), b(k, n), ac(m + 2, k), br(k, n + 2), cf(m + 2, n + 2) {
    Rng rng(seed);
    a = Matrix::random(m, k, rng);
    b = Matrix::random(k, n, rng);
  }
  FtDgemmDual::Buffers buffers() { return {ac.view(), br.view(), cf.view()}; }
  Matrix reference() {
    Matrix c(a.rows(), b.cols());
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    return c;
  }
};

TEST(FtDgemmDual, CleanRunMatchesPlainGemm) {
  Fix s(72, 56, 88, 1);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  EXPECT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-9);
}

TEST(FtDgemmDual, DualChecksumInvariantHolds) {
  Fix s(64, 64, 64, 2);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  for (std::size_t j = 0; j < 64; ++j) {
    double sum = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < 64; ++i) {
      sum += s.cf(i, j);
      wsum += static_cast<double>(i + 1) * s.cf(i, j);
    }
    EXPECT_NEAR(sum, s.cf(64, j), 1e-7);
    EXPECT_NEAR(wsum, s.cf(65, j), 1e-5);
  }
}

TEST(FtDgemmDual, SingleErrorLocatedByColumnAlone) {
  Fix s(64, 64, 64, 3);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(22, 41) -= 13.5;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemmDual, EqualMagnitudeGridCorrected) {
  // The pattern the single-checksum FtDgemm reports uncorrectable
  // (see FtDgemm.AmbiguousGridPatternReportedUncorrectable).
  Fix s(64, 64, 64, 4);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(10, 20) += 3.0;
  s.cf(10, 30) += 3.0;
  s.cf(40, 20) += 3.0;
  s.cf(40, 30) += 3.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
  EXPECT_GE(ft.stats().errors_corrected, 4u);
}

TEST(FtDgemmDual, TwoErrorsSameColumnSolvedExactly) {
  Fix s(64, 64, 64, 5);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  s.cf(7, 15) += 2.5;
  s.cf(51, 15) -= 8.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-8);
}

TEST(FtDgemmDual, CorruptedChecksumEntriesRefreshed) {
  Fix s(64, 64, 64, 6);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  s.cf(64, 12) += 5.0;   // sum checksum row
  s.cf(65, 33) -= 2.0;   // weighted checksum row
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kOk);  // now clean
}

TEST(FtDgemmDual, ThreeRowGridStillRefused) {
  // 3 bad rows x bad columns exceeds the 2-unknown solver: must refuse,
  // never guess.
  Fix s(64, 64, 64, 7);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  for (std::size_t i : {5u, 25u, 45u})
    for (std::size_t j : {10u, 30u}) s.cf(i, j) += 4.0;
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kUncorrectable);
}

TEST(FtDgemmDual, SingleChecksumPeerRefusesWhatDualCorrects) {
  // Side-by-side: the same grid pattern on both implementations.
  Rng rng(8);
  const std::size_t n = 64;
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);

  Matrix ac1(n + 1, n), br1(n, n + 1), cf1(n + 1, n + 1);
  FtDgemm single(a.view(), b.view(), {ac1.view(), br1.view(), cf1.view()});
  ASSERT_EQ(single.run(), FtStatus::kOk);

  Matrix ac2(n + 2, n), br2(n, n + 2), cf2(n + 2, n + 2);
  FtDgemmDual dual(a.view(), b.view(), {ac2.view(), br2.view(), cf2.view()});
  ASSERT_EQ(dual.run(), FtStatus::kOk);

  for (auto* cf : {&cf1, &cf2}) {
    (*cf)(3, 9) += 7.0;
    (*cf)(3, 48) += 7.0;
    (*cf)(33, 9) += 7.0;
    (*cf)(33, 48) += 7.0;
  }
  EXPECT_EQ(single.verify_and_correct(), FtStatus::kUncorrectable);
  EXPECT_EQ(dual.verify_and_correct(), FtStatus::kCorrectedErrors);
}

class DualRandomPairs : public ::testing::TestWithParam<int> {};

TEST_P(DualRandomPairs, RandomTwoErrorColumnsAlwaysRepaired) {
  const int seed = GetParam();
  Rng rng(100 + seed);
  Fix s(72, 72, 72, 200 + seed);
  FtDgemmDual ft(s.a.view(), s.b.view(), s.buffers());
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  Matrix ref = s.reference();
  const std::size_t j = rng.below(72);
  const std::size_t i1 = rng.below(36), i2 = 36 + rng.below(36);
  s.cf(i1, j) += rng.uniform(1.0, 50.0);
  s.cf(i2, j) -= rng.uniform(1.0, 50.0);
  EXPECT_EQ(ft.verify_and_correct(), FtStatus::kCorrectedErrors);
  EXPECT_LT(max_abs_diff(ft.result(), ref.view()), 1e-7) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualRandomPairs, ::testing::Range(0, 12));

}  // namespace
}  // namespace abftecc::abft
