// FT-Cholesky: factorization correctness, trailing-matrix error detection,
// location and correction through the maintained sum/weighted checksums.
#include <gtest/gtest.h>

#include "abft/ft_cholesky.hpp"
#include "common/rng.hpp"
#include "linalg/factor.hpp"

namespace abftecc::abft {
namespace {

struct Fix {
  Matrix a;
  std::vector<double> sum, weighted;
  explicit Fix(std::size_t n, std::uint64_t seed)
      : a(n, n), sum(n), weighted(n) {
    Rng rng(seed);
    a = Matrix::random_spd(n, rng);
  }
  FtCholesky::Buffers buffers() { return {a.view(), sum, weighted}; }
};

void expect_valid_factor(ConstMatrixView l, ConstMatrixView a_orig,
                         double tol) {
  const std::size_t n = a_orig.rows();
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k <= j; ++k) s += l(i, k) * l(j, k);
      ASSERT_NEAR(s, a_orig(i, j), tol) << i << "," << j;
    }
}

TEST(FtCholesky, CleanRunMatchesPlainPotrf) {
  Fix s(96, 1);
  Matrix orig = s.a;
  FtCholesky ft(s.buffers(), {}, nullptr, 32);
  EXPECT_EQ(ft.run(), FtStatus::kOk);
  expect_valid_factor(s.a.view(), orig.view(), 1e-7);
  EXPECT_EQ(ft.stats().errors_detected, 0u);
}

class FtCholeskySizes : public ::testing::TestWithParam<int> {};

TEST_P(FtCholeskySizes, FactorsCorrectlyAcrossDims) {
  const int n = GetParam();
  Fix s(n, 100 + n);
  Matrix orig = s.a;
  FtCholesky ft(s.buffers(), {}, nullptr, 24);
  EXPECT_EQ(ft.run(), FtStatus::kOk);
  expect_valid_factor(s.a.view(), orig.view(), 1e-7 * n);
}

INSTANTIATE_TEST_SUITE_P(Dims, FtCholeskySizes,
                         ::testing::Values(8, 24, 25, 48, 100, 129));

TEST(FtCholesky, NonSpdInputReportsNumericalFailure) {
  Fix s(16, 2);
  s.a(5, 5) = -100.0;
  FtCholesky ft(s.buffers());
  EXPECT_EQ(ft.run(), FtStatus::kNumericalFailure);
}

TEST(FtCholesky, TrailingErrorDetectedLocatedAndCorrected) {
  // Corrupt an element of the trailing matrix after checksums were encoded;
  // the next verification must repair it exactly.
  struct CorruptingTap {
    double* target;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) *target += 100.0;
    }
  };
  Fix s(128, 3);
  Matrix orig = s.a;
  FtCholesky ft(s.buffers(), {}, nullptr, 32);
  std::uint64_t counter = 0;
  // Element deep in the trailing matrix, hit early in the run.
  CorruptingTap tap{&s.a(100, 90), &counter, 50000};
  const FtStatus st = ft.run(tap);
  EXPECT_EQ(st, FtStatus::kCorrectedErrors);
  EXPECT_GE(ft.stats().errors_corrected, 1u);
  expect_valid_factor(s.a.view(), orig.view(), 1e-6);
}

TEST(FtCholesky, MultipleColumnsCorrectedInOnePass) {
  Fix s(96, 4);
  FtCholesky ft(s.buffers(), {}, nullptr, 32);
  // Encode checksums for the full matrix, then corrupt three columns.
  ft.verify_and_correct(0);  // no-op verify to exercise the clean path
  Matrix orig = s.a;
  // Manually encode trailing checksums via a fresh run-less path: use the
  // public API -- run a clean factorization first, corrupt L afterwards is
  // not covered; instead corrupt between encode and verify using the tap.
  struct MultiCorruptTap {
    double* t1;
    double* t2;
    double* t3;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) {
        *t1 += 3.0;
        *t2 -= 8.0;
        *t3 += 0.5;
      }
    }
  };
  Fix s2(96, 4);
  Matrix orig2 = s2.a;
  FtCholesky ft2(s2.buffers(), {}, nullptr, 32);
  std::uint64_t counter = 0;
  MultiCorruptTap tap{&s2.a(90, 70), &s2.a(80, 75), &s2.a(95, 85), &counter,
                      40000};
  const FtStatus st = ft2.run(tap);
  EXPECT_EQ(st, FtStatus::kCorrectedErrors);
  EXPECT_GE(ft2.stats().errors_corrected, 3u);
  expect_valid_factor(s2.a.view(), orig2.view(), 1e-6);
  (void)orig;
}

TEST(FtCholesky, TwoErrorsInSameColumnUncorrectable) {
  struct TwoSameColTap {
    double* t1;
    double* t2;
    std::uint64_t* counter;
    std::uint64_t fire_at;
    void read(const void*, std::size_t = 8) { tick(); }
    void write(const void*, std::size_t = 8) { tick(); }
    void update(const void*, std::size_t = 8) { tick(); }
    void tick() {
      if (++*counter == fire_at) {
        *t1 += 5.0;
        *t2 += 7.0;
      }
    }
  };
  Fix s(96, 5);
  FtCholesky ft(s.buffers(), {}, nullptr, 32);
  std::uint64_t counter = 0;
  TwoSameColTap tap{&s.a(80, 70), &s.a(90, 70), &counter, 40000};
  EXPECT_EQ(ft.run(tap), FtStatus::kUncorrectable);
}

TEST(FtCholesky, ChecksumMaintenanceTrackedAsEncodeTime) {
  Fix s(96, 6);
  FtCholesky ft(s.buffers(), {}, nullptr, 32);
  ASSERT_EQ(ft.run(), FtStatus::kOk);
  EXPECT_GT(ft.stats().encode_seconds, 0.0);
  EXPECT_GT(ft.stats().verify_seconds, 0.0);
  EXPECT_GT(ft.stats().verifications, 1u);
}

}  // namespace
}  // namespace abftecc::abft
