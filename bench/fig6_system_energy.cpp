// Figure 6: system energy (memory + processor) under the six strategies,
// normalized to No_ECC.
//
// Paper shape: processor energy varies with the ECC strategy (most for the
// memory-intensive FT-CG, where ECC throttles issue); partial chipkill
// saves up to 22/8/25/10% system energy for DGEMM/Cholesky/CG/HPL; partial
// SECDED saves up to 5% (FT-DGEMM).
#include "bench/sweep.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  bench::Report rep(argc, argv, "Figure 6: system energy by ECC strategy",
                    "SC'13 Fig. 6", base);

  const bench::Sweep sweep = bench::run_sweep(base);
  bench::add_sweep(rep, sweep);
  for (const auto kernel : bench::kSweepKernels) {
    const auto& none = sweep.at(kernel, Strategy::kNoEcc);
    const double base_sys = none.system_pj();
    std::printf("-- %s (normalized to No_ECC) --\n",
                std::string(kernel_name(kernel)).c_str());
    bench::row({"strategy", "system", "memory", "processor"});
    for (const auto strategy : kAllStrategies) {
      const auto& m = sweep.at(kernel, strategy);
      bench::row({std::string(spec(strategy).label),
                  bench::fmt(m.system_pj() / base_sys),
                  bench::fmt(m.memory_pj() / base_sys),
                  bench::fmt(m.processor_pj / base_sys)});
    }
    const auto& wck = sweep.at(kernel, Strategy::kWholeChipkill);
    const auto& pck = sweep.at(kernel, Strategy::kPartialChipkillNoEcc);
    const auto& wsd = sweep.at(kernel, Strategy::kWholeSecded);
    const auto& psd = sweep.at(kernel, Strategy::kPartialSecdedNoEcc);
    std::printf("   system saving: partial-CK vs W_CK %s, partial-SD vs W_SD "
                "%s\n\n",
                bench::fmt_pct(1.0 - pck.system_pj() / wck.system_pj()).c_str(),
                bench::fmt_pct(1.0 - psd.system_pj() / wsd.system_pj()).c_str());
    const std::string kn(kernel_name(kernel));
    rep.scalar(kn + ".system_saving_pck_vs_wck",
               1.0 - pck.system_pj() / wck.system_pj());
    rep.scalar(kn + ".system_saving_psd_vs_wsd",
               1.0 - psd.system_pj() / wsd.system_pj());
  }
  std::printf(
      "paper anchors: partial chipkill saves up to 22/8/25/10%% "
      "(DGEMM/Cholesky/CG/HPL); partial SECDED up to 5%%.\n");
  return 0;
}
