// Figure 5: memory energy for ABFT under the six ECC strategies, split into
// dynamic and standby components, normalized to the No_ECC run of each
// kernel.
//
// Paper shape: whole chipkill is the most expensive everywhere (+68% for
// the memory-intensive FT-CG); partial chipkill recovers most of the gap
// (49% saving for FT-DGEMM, 38% for FT-CG vs W_CK); P_CK+P_SD costs only
// slightly more than P_CK+No_ECC; whole SECDED adds ~12% on average;
// dynamic energy is far more scheme-sensitive than standby.
#include "bench/sweep.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  bench::Report rep(argc, argv, "Figure 5: memory energy by ECC strategy",
                    "SC'13 Fig. 5", base);

  const bench::Sweep sweep = bench::run_sweep(base);
  bench::add_sweep(rep, sweep);
  for (const auto kernel : bench::kSweepKernels) {
    const auto& none = sweep.at(kernel, Strategy::kNoEcc);
    const double base_mem = none.memory_pj();
    std::printf("-- %s (normalized to No_ECC) --\n",
                std::string(kernel_name(kernel)).c_str());
    bench::row({"strategy", "memory", "dynamic", "standby", "rowhit"});
    for (const auto strategy : kAllStrategies) {
      const auto& m = sweep.at(kernel, strategy);
      bench::row({std::string(spec(strategy).label),
                  bench::fmt(m.memory_pj() / base_mem),
                  bench::fmt(m.mem_dynamic_pj / base_mem),
                  bench::fmt(m.mem_standby_pj / base_mem),
                  bench::fmt(m.dram.row_hit_rate(), 2)});
    }
    const auto& wck = sweep.at(kernel, Strategy::kWholeChipkill);
    const auto& pck = sweep.at(kernel, Strategy::kPartialChipkillNoEcc);
    const auto& pckpsd = sweep.at(kernel, Strategy::kPartialChipkillSecded);
    std::printf("   partial-CK saving vs W_CK: %s (P_CK+No_ECC), %s "
                "(P_CK+P_SD)\n\n",
                bench::fmt_pct(1.0 - pck.memory_pj() / wck.memory_pj()).c_str(),
                bench::fmt_pct(1.0 - pckpsd.memory_pj() / wck.memory_pj()).c_str());
    const std::string kn(kernel_name(kernel));
    rep.scalar(kn + ".saving_pck_vs_wck",
               1.0 - pck.memory_pj() / wck.memory_pj());
    rep.scalar(kn + ".saving_pckpsd_vs_wck",
               1.0 - pckpsd.memory_pj() / wck.memory_pj());
  }
  std::printf(
      "paper anchors: FT-CG W_CK +68%% memory energy; savings 49%%/38%% "
      "(DGEMM/CG) for partial chipkill; W_SD ~ +12%% on average.\n");
  return 0;
}
