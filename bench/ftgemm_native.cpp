// Native-mode FT overhead: the fused FT-DGEMM (checksum encode/verify
// woven into the blocked SIMD tile sweep, see abft/ft_dgemm_fused.hpp)
// against the same unprotected native GEMM, at sizes where the paper's
// software-only overhead argument bites. Wall-clock, no simulator: this
// is the `--backend native` execution mode measured on real silicon.
//
// The headline scalar is overhead_ratio_2048 = fused/unprotected - 1;
// tools/benchgate.py gates it at < 10% (skipped with a note when the host
// lacks AVX2/FMA and the scalar fallback kernel is in play -- ratios are
// still reported for the record). Wall-clock numbers are NOT part of the
// baseline snapshot compare: they move with the host.
#include <algorithm>
#include <cstdio>

#include "abft/ft_dgemm_fused.hpp"
#include "bench/report.hpp"
#include "common/backend.hpp"
#include "common/rng.hpp"
#include "linalg/gemm_native.hpp"

namespace abftecc {
namespace {

double gflops(std::size_t n, double seconds) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) / seconds * 1e-9;
}

/// One timed run of `fn`.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const TickClock wall;
  const std::uint64_t t0 = wall.now();
  fn();
  return wall.seconds_since(t0);
}

void measure(bench::Report& rep, std::size_t n, int reps) {
  Rng rng(n);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  Matrix c(n, n);

  // Interleave the two variants rep by rep and keep each one's best: on a
  // shared host the background load moves slower than one rep, so pairing
  // keeps a throughput dip from landing entirely on one side of the ratio.
  double unprot = 1e300, fused = 1e300;
  abft::FtStatus status = abft::FtStatus::kOk;
  abft::FtStats stats;
  NativeBackend be;  ///< shared across reps; counters recorded once below
  for (int r = 0; r < reps; ++r) {
    unprot = std::min(unprot, timed_seconds([&] {
               linalg::gemm_native(1.0, a.view(), b.view(), 0.0, c.view());
             }));
    fused = std::min(fused, timed_seconds([&] {
              abft::FtDgemmFused ft(a.view(), b.view(), c.view());
              status = ft.run(be);
              stats = ft.stats();
            }));
  }
  if (status != abft::FtStatus::kOk) {
    std::fprintf(stderr, "ftgemm_native: fused run at n=%zu returned %s\n", n,
                 std::string(abft::to_string(status)).c_str());
    std::exit(1);
  }

  const double ratio = fused / unprot - 1.0;
  char key[64];
  std::snprintf(key, sizeof key, "unprotected_seconds_%zu", n);
  rep.scalar(key, unprot);
  std::snprintf(key, sizeof key, "fused_seconds_%zu", n);
  rep.scalar(key, fused);
  std::snprintf(key, sizeof key, "overhead_ratio_%zu", n);
  rep.scalar(key, ratio);
  std::snprintf(key, sizeof key, "ft_verify_seconds_%zu", n);
  rep.scalar(key, stats.verify_seconds);
  std::snprintf(key, sizeof key, "ft_encode_seconds_%zu", n);
  rep.scalar(key, stats.encode_seconds);

  // Full schema-v1 run row (same shape sim harnesses emit, with the
  // sim-only sections zero), so compare_runs.py reads native reports and
  // the FT verify/repair counters land in `runs[].ft`. Also feed the
  // registry so --metrics-out exposes native runs.
  sim::RunMetrics m;
  m.kernel = sim::Kernel::kDgemm;
  m.strategy = sim::Strategy::kNoEcc;
  m.backend = BackendMode::kNative;
  m.seconds = fused;
  m.ft = stats;
  m.status = status;
  m.abft_bytes = n * n * sizeof(double);
  m.total_bytes = 3 * n * n * sizeof(double);
  char label[64];
  std::snprintf(label, sizeof label, "fused-native-%zu", n);
  rep.add_run(label, m);
  sim::record_native_metrics(be.counters(), stats);

  bench::row({std::to_string(n), bench::fmt(gflops(n, unprot), 2),
              bench::fmt(gflops(n, fused), 2), bench::fmt_pct(ratio)});
}

}  // namespace
}  // namespace abftecc

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv, "ftgemm_native",
                    "native fused FT-GEMM overhead (Section 2.1 at "
                    "hardware speed)");
  rep.note("simd_kernel", linalg::native_kernel_name());
  std::printf("native kernel: %s\n\n", linalg::native_kernel_name());
  bench::row({"n", "plain GF/s", "fused GF/s", "FT overhead"});

  measure(rep, 1024, 3);
  measure(rep, 2048, 2);
  return 0;
}
