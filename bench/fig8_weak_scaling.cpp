// Figure 8: weak-scaling comparison of energy benefit vs ABFT recovery
// cost with fault modeling, FT-CG, 100 .. 819200 processes.
//
// Paper shape: both benefit and recovery cost grow roughly in proportion
// to the system scale; the benefit stays far above the recovery cost;
// P_CK+P_SD matches P_CK+No_ECC's benefit with a much smaller recovery
// cost (SECDED absorbs most raw faults before ABFT sees them).
#include "bench/report.hpp"
#include "sim/scaling.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  ScalingOptions opt;
  opt.process_counts = {100, 3200, 12800, 51200, 204800, 819200};
  opt.base_dim = 640;
  opt.iterations = 4;
  bench::Report rep(argc, argv,
                    "Figure 8: weak scaling, energy benefit vs recovery cost",
                    "SC'13 Fig. 8", opt.platform);
  std::printf("Table 5 residual rates: No_ECC 5000, SECDED 1300, chipkill "
              "0.02 FIT/Mbit\n\n");
  ScalingStudy study(opt);

  for (const auto scheme :
       {Strategy::kPartialChipkillNoEcc, Strategy::kPartialChipkillSecded,
        Strategy::kPartialSecdedNoEcc}) {
    std::printf("-- %s (baseline %s) --\n",
                std::string(spec(scheme).label).c_str(),
                std::string(spec(ScalingStudy::baseline_for(scheme)).label).c_str());
    bench::row({"processes", "benefit(kJ)", "recovery(kJ)", "errors",
                "MTTF(s)"});
    for (const auto& p : study.weak_scaling(scheme)) {
      bench::row({bench::fmt(p.processes, 0),
                  bench::fmt_sci(p.energy_benefit_kj),
                  bench::fmt_sci(p.recovery_cost_kj),
                  bench::fmt_sci(p.expected_errors),
                  bench::fmt_sci(p.mttf_hetero_seconds)});
      const std::string key = std::string(spec(scheme).label) + "@" +
                              bench::fmt(p.processes, 0);
      rep.scalar(key + ".benefit_kj", p.energy_benefit_kj);
      rep.scalar(key + ".recovery_kj", p.recovery_cost_kj);
      rep.scalar(key + ".expected_errors", p.expected_errors);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: benefit and cost both ~linear in scale; benefit >> "
      "cost; P_CK+P_SD has the lowest recovery cost.\n");
  return 0;
}
