// Figure 7: performance (IPC) under the six strategies, normalized to
// No_ECC.
//
// Paper shape: selective ECC keeps performance close to running without
// ECC (especially FT-DGEMM and FT-Cholesky); the performance variance
// across strategies is smaller than the energy variance because memory
// parallelism hides part of the ECC access latency.
#include "bench/sweep.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  bench::Report rep(argc, argv, "Figure 7: performance (IPC) by ECC strategy",
                    "SC'13 Fig. 7", base);

  const bench::Sweep sweep = bench::run_sweep(base);
  bench::add_sweep(rep, sweep);
  bench::row({"strategy", "FT-DGEMM", "FT-Cholesky", "FT-CG", "FT-HPL"});
  for (const auto strategy : kAllStrategies) {
    std::vector<std::string> cells{std::string(spec(strategy).label)};
    for (const auto kernel : bench::kSweepKernels) {
      const double base_ipc = sweep.at(kernel, Strategy::kNoEcc).ipc;
      cells.push_back(bench::fmt(sweep.at(kernel, strategy).ipc / base_ipc));
    }
    bench::row(cells);
  }
  // Variance comparison the paper calls out.
  for (const auto kernel : bench::kSweepKernels) {
    double ipc_min = 1e9, ipc_max = 0, e_min = 1e18, e_max = 0;
    for (const auto strategy : kAllStrategies) {
      const auto& m = sweep.at(kernel, strategy);
      ipc_min = std::min(ipc_min, m.ipc);
      ipc_max = std::max(ipc_max, m.ipc);
      e_min = std::min(e_min, m.memory_pj());
      e_max = std::max(e_max, m.memory_pj());
    }
    std::printf("%s: IPC spread %s vs memory-energy spread %s\n",
                std::string(kernel_name(kernel)).c_str(),
                bench::fmt_pct(ipc_max / ipc_min - 1.0).c_str(),
                bench::fmt_pct(e_max / e_min - 1.0).c_str());
    const std::string kn(kernel_name(kernel));
    rep.scalar(kn + ".ipc_spread", ipc_max / ipc_min - 1.0);
    rep.scalar(kn + ".memory_energy_spread", e_max / e_min - 1.0);
  }
  std::printf(
      "\npaper shape: partial-ECC IPC ~= No_ECC IPC; performance spread < "
      "energy spread.\n");
  return 0;
}
