// Ablation (Section 3.1): sizing the MC's error registers.
//
// The paper provisions n = 6 registers so that >= n/2 error events within
// one ABFT examination period never overflow. This harness injects bursts
// of uncorrectable errors between two drains and reports how many fault
// records the ring lost, for burst sizes straddling the register count.
#include "bench/report.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv, "Ablation: MC error-register depth (n = 6)",
                    "SC'13 Sec. 3.1 register sizing");
  bench::row({"burst", "recorded", "exposed", "dropped"});
  for (unsigned burst = 1; burst <= 12; ++burst) {
    memsim::MemorySystem sys(memsim::SystemConfig::scaled(8),
                             ecc::Scheme::kChipkill);
    os::Os os(sys);
    fault::Injector inj(sys, os);
    auto* p = static_cast<std::uint8_t*>(
        os.malloc_ecc(64 * 1024, ecc::Scheme::kSecded, "data", true));
    for (std::size_t i = 0; i < 64 * 1024; ++i)
      p[i] = static_cast<std::uint8_t>(i);
    // `burst` double-bit (uncorrectable) errors on distinct lines, all
    // landing before the OS-side consumer (ABFT) drains the log. The OS
    // drains the sysfs log eagerly per interrupt, so the registers
    // themselves are what the burst stresses: drop counting happens there.
    for (unsigned e = 0; e < burst; ++e) {
      const auto phys = *os.virt_to_phys(p + 64 * (e + 1));
      inj.inject_bit(phys, 0);
      inj.inject_bit(phys + 1, 1);
      sys.access(phys, memsim::AccessKind::kRead);
    }
    bench::row({std::to_string(burst),
                std::to_string(sys.controller().uncorrectable_count()),
                std::to_string(os.drain_exposed_errors().size()),
                std::to_string(sys.controller().dropped_error_records())});
    rep.scalar(
        "burst" + std::to_string(burst) + ".dropped",
        static_cast<double>(sys.controller().dropped_error_records()));
  }
  std::printf(
      "\nexpected: with n = 6 registers, bursts beyond 6 overwrite older "
      "records; the paper argues such bursts are improbable within one "
      "ABFT examination period.\n");
  return 0;
}
