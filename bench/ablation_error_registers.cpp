// Ablation (Section 3.1): sizing the MC's error registers.
//
// The paper provisions n = 6 registers so that >= n/2 error events within
// one ABFT examination period never overflow. This harness injects bursts
// of uncorrectable errors between two drains and reports how many fault
// records the ring lost, for burst sizes straddling the register count.
#include "bench/report.hpp"
#include "fault/injector.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv, "Ablation: MC error-register depth (n = 6)",
                    "SC'13 Sec. 3.1 register sizing");
  bench::row({"burst", "recorded", "exposed", "dropped"});
  for (unsigned burst = 1; burst <= 12; ++burst) {
    sim::Session s = sim::Session::Builder()
                         .strategy(sim::Strategy::kPartialChipkillSecded)
                         .build();
    auto* p = reinterpret_cast<std::uint8_t*>(
        s.abft_vector(8 * 1024, "data").data());
    for (std::size_t i = 0; i < 64 * 1024; ++i)
      p[i] = static_cast<std::uint8_t>(i);
    // `burst` double-bit (uncorrectable) errors on distinct lines, all
    // landing before the OS-side consumer (ABFT) drains the log. The OS
    // drains the sysfs log eagerly per interrupt, so the registers
    // themselves are what the burst stresses: drop counting happens there.
    for (unsigned e = 0; e < burst; ++e) {
      const auto phys = *s.os().virt_to_phys(p + 64 * (e + 1));
      s.injector().inject_bit(phys, 0);
      s.injector().inject_bit(phys + 1, 1);
      s.memory().access(phys, memsim::AccessKind::kRead);
    }
    bench::row(
        {std::to_string(burst),
         std::to_string(s.memory().controller().uncorrectable_count()),
         std::to_string(s.os().drain_exposed_errors().size()),
         std::to_string(s.memory().controller().dropped_error_records())});
    rep.scalar(
        "burst" + std::to_string(burst) + ".dropped",
        static_cast<double>(s.memory().controller().dropped_error_records()));
  }
  std::printf(
      "\nexpected: with n = 6 registers, bursts beyond 6 overwrite older "
      "records; the paper argues such bursts are improbable within one "
      "ABFT examination period.\n");
  return 0;
}
