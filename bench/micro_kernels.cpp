// Google-benchmark microbenchmarks for the substrate hot paths: the BLAS
// kernels the ABFT algorithms are built on, the bit-level ECC codecs the
// memory controller runs per line, and the simulator's per-access cost.
#include <benchmark/benchmark.h>

#include "abft/ft_dgemm_fused.hpp"
#include "common/backend.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/secded.hpp"
#include "linalg/blas.hpp"
#include "linalg/factor.hpp"
#include "linalg/gemm_native.hpp"
#include "memsim/system.hpp"

namespace abftecc {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::random_spd(n, rng);
  for (auto _ : state) {
    Matrix w = a;
    linalg::potrf(w.view());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix a = Matrix::random(n, n, rng);
  std::vector<double> x(n, 1.0), y(n);
  for (auto _ : state) {
    linalg::gemv(1.0, a.view(), x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * sizeof(double));
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024);

void BM_SecdedEncode(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t v = rng();
  for (auto _ : state) {
    auto w = ecc::Secded::encode(v);
    benchmark::DoNotOptimize(w);
    v = v * 6364136223846793005ull + 1;
  }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeCorrect(benchmark::State& state) {
  Rng rng(5);
  auto w = ecc::Secded::encode(rng());
  ecc::Secded::flip_bit(w, 13);
  for (auto _ : state) {
    auto copy = w;
    benchmark::DoNotOptimize(ecc::Secded::decode(copy));
  }
}
BENCHMARK(BM_SecdedDecodeCorrect);

void BM_ChipkillEncode(benchmark::State& state) {
  Rng rng(6);
  std::array<std::uint8_t, ecc::Chipkill::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    auto cw = ecc::Chipkill::encode(d);
    benchmark::DoNotOptimize(cw);
  }
}
BENCHMARK(BM_ChipkillEncode);

void BM_ChipkillDecodeCorrect(benchmark::State& state) {
  Rng rng(7);
  std::array<std::uint8_t, ecc::Chipkill::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  auto cw = ecc::Chipkill::encode(d);
  cw[9] ^= 0x5A;
  for (auto _ : state) {
    auto copy = cw;
    benchmark::DoNotOptimize(ecc::Chipkill::decode(copy));
  }
}
BENCHMARK(BM_ChipkillDecodeCorrect);

// --- native backend entries -------------------------------------------------
// Unprotected blocked native GEMM vs the fused FT-DGEMM, at the sizes the
// benchgate overhead gate uses. Registered at runtime so the rows carry
// the dispatched kernel's name and hosts without AVX2/FMA simply skip the
// avx2-labeled rows instead of reporting scalar numbers under that label.

void BM_GemmNative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    linalg::gemm_native(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}

void BM_FtDgemmFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    NativeBackend be;
    abft::FtDgemmFused ft(a.view(), b.view(), c.view());
    if (ft.run(be) != abft::FtStatus::kOk)
      state.SkipWithError("fused run failed");
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}

const int kNativeRegistered = [] {
  if (!linalg::native_simd_available()) return 0;
  const std::string tag = linalg::native_kernel_name();
  for (const std::int64_t n : {1024, 2048}) {
    benchmark::RegisterBenchmark(("BM_GemmNative/" + tag).c_str(),
                                 BM_GemmNative)
        ->Arg(n);
    benchmark::RegisterBenchmark(("BM_FtDgemmFused/" + tag).c_str(),
                                 BM_FtDgemmFused)
        ->Arg(n);
  }
  return 1;
}();

void BM_SimulatedAccess(benchmark::State& state) {
  memsim::MemorySystem sys(memsim::SystemConfig::scaled(8),
                           ecc::Scheme::kChipkill);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    sys.access(addr, memsim::AccessKind::kRead);
    addr = (addr + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedAccess);

}  // namespace
}  // namespace abftecc

BENCHMARK_MAIN();
