// Google-benchmark microbenchmarks for the substrate hot paths: the BLAS
// kernels the ABFT algorithms are built on, the bit-level ECC codecs the
// memory controller runs per line, and the simulator's per-access cost.
//
// `--json <path>` (consumed before google-benchmark sees the argv) writes
// a schema-v1 report for the NATIVE rows -- one timed gemm_native /
// FtDgemmFused pair per size with full FT counters -- so compare_runs.py
// reads microbenchmark output the same way it reads the sim harnesses'.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "abft/ft_dgemm_fused.hpp"
#include "bench/report.hpp"
#include "common/backend.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/secded.hpp"
#include "linalg/blas.hpp"
#include "linalg/factor.hpp"
#include "linalg/gemm_native.hpp"
#include "memsim/system.hpp"

namespace abftecc {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a = Matrix::random_spd(n, rng);
  for (auto _ : state) {
    Matrix w = a;
    linalg::potrf(w.view());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix a = Matrix::random(n, n, rng);
  std::vector<double> x(n, 1.0), y(n);
  for (auto _ : state) {
    linalg::gemv(1.0, a.view(), x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * sizeof(double));
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024);

void BM_SecdedEncode(benchmark::State& state) {
  Rng rng(4);
  std::uint64_t v = rng();
  for (auto _ : state) {
    auto w = ecc::Secded::encode(v);
    benchmark::DoNotOptimize(w);
    v = v * 6364136223846793005ull + 1;
  }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeCorrect(benchmark::State& state) {
  Rng rng(5);
  auto w = ecc::Secded::encode(rng());
  ecc::Secded::flip_bit(w, 13);
  for (auto _ : state) {
    auto copy = w;
    benchmark::DoNotOptimize(ecc::Secded::decode(copy));
  }
}
BENCHMARK(BM_SecdedDecodeCorrect);

void BM_ChipkillEncode(benchmark::State& state) {
  Rng rng(6);
  std::array<std::uint8_t, ecc::Chipkill::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    auto cw = ecc::Chipkill::encode(d);
    benchmark::DoNotOptimize(cw);
  }
}
BENCHMARK(BM_ChipkillEncode);

void BM_ChipkillDecodeCorrect(benchmark::State& state) {
  Rng rng(7);
  std::array<std::uint8_t, ecc::Chipkill::kDataSymbols> d{};
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.below(256));
  auto cw = ecc::Chipkill::encode(d);
  cw[9] ^= 0x5A;
  for (auto _ : state) {
    auto copy = cw;
    benchmark::DoNotOptimize(ecc::Chipkill::decode(copy));
  }
}
BENCHMARK(BM_ChipkillDecodeCorrect);

// --- native backend entries -------------------------------------------------
// Unprotected blocked native GEMM vs the fused FT-DGEMM, at the sizes the
// benchgate overhead gate uses. Registered at runtime so the rows carry
// the dispatched kernel's name and hosts without AVX2/FMA simply skip the
// avx2-labeled rows instead of reporting scalar numbers under that label.

void BM_GemmNative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    linalg::gemm_native(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}

void BM_FtDgemmFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng), c(n, n);
  for (auto _ : state) {
    NativeBackend be;
    abft::FtDgemmFused ft(a.view(), b.view(), c.view());
    if (ft.run(be) != abft::FtStatus::kOk)
      state.SkipWithError("fused run failed");
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}

const int kNativeRegistered = [] {
  if (!linalg::native_simd_available()) return 0;
  const std::string tag = linalg::native_kernel_name();
  for (const std::int64_t n : {1024, 2048}) {
    benchmark::RegisterBenchmark(("BM_GemmNative/" + tag).c_str(),
                                 BM_GemmNative)
        ->Arg(n);
    benchmark::RegisterBenchmark(("BM_FtDgemmFused/" + tag).c_str(),
                                 BM_FtDgemmFused)
        ->Arg(n);
  }
  return 1;
}();

void BM_SimulatedAccess(benchmark::State& state) {
  memsim::MemorySystem sys(memsim::SystemConfig::scaled(8),
                           ecc::Scheme::kChipkill);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    sys.access(addr, memsim::AccessKind::kRead);
    addr = (addr + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedAccess);

// --- schema-v1 report mode --------------------------------------------------
// When `--json <path>` (or `--metrics-out <path>`) is present we time the
// native rows once ourselves -- google-benchmark owns its own timing loop
// and offers no hook for per-run FT counters -- and emit the same report
// shape the sim harnesses write: runs[] with backend="native" and real
// verify/locate/repair counters, readable by compare_runs.py.

void write_native_report(int argc, char** argv) {
  bench::Report rep(argc, argv, "micro_kernels",
                    "native microbenchmark rows (substrate hot paths)");
  rep.note("simd_kernel", linalg::native_kernel_name());
  rep.note("simd_available",
           linalg::native_simd_available() ? "true" : "false");
  for (const std::size_t n : {std::size_t{256}, std::size_t{512}}) {
    Rng rng(10);
    Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng),
           c(n, n);
    NativeBackend be;

    TickClock wall;
    std::uint64_t t0 = wall.now();
    linalg::gemm_native(1.0, a.view(), b.view(), 0.0, c.view());
    const double plain_s = wall.seconds_since(t0);

    abft::FtDgemmFused ft(a.view(), b.view(), c.view());
    t0 = wall.now();
    const abft::FtStatus status = ft.run(be);
    const double fused_s = wall.seconds_since(t0);
    const abft::FtStats stats = ft.stats();

    sim::RunMetrics plain;
    plain.kernel = sim::Kernel::kDgemm;
    plain.strategy = sim::Strategy::kNoEcc;
    plain.backend = BackendMode::kNative;
    plain.seconds = plain_s;
    plain.total_bytes = 3 * n * n * sizeof(double);
    rep.add_run("gemm-native-" + std::to_string(n), plain);

    sim::RunMetrics fused;
    fused.kernel = sim::Kernel::kDgemm;
    fused.strategy = sim::Strategy::kNoEcc;
    fused.backend = BackendMode::kNative;
    fused.seconds = fused_s;
    fused.ft = stats;
    fused.status = status;
    fused.abft_bytes = n * n * sizeof(double);
    fused.total_bytes = 3 * n * n * sizeof(double);
    rep.add_run("fused-native-" + std::to_string(n), fused);

    char key[64];
    std::snprintf(key, sizeof key, "overhead_ratio_%zu", n);
    rep.scalar(key, plain_s > 0.0 ? fused_s / plain_s - 1.0 : 0.0);
    sim::record_native_metrics(be.counters(), stats);
  }
}

}  // namespace
}  // namespace abftecc

int main(int argc, char** argv) {
  // Split the argv: report flags (--json/--metrics-out and their values) go
  // to bench::Report, everything else goes to google-benchmark untouched.
  std::vector<char*> bench_argv{argv[0]};
  std::vector<char*> report_argv{argv[0]};
  bool want_report = false;
  for (int i = 1; i < argc; ++i) {
    const bool is_report_flag = std::strcmp(argv[i], "--json") == 0 ||
                                std::strcmp(argv[i], "--metrics-out") == 0;
    if (is_report_flag && i + 1 < argc) {
      want_report = true;
      report_argv.push_back(argv[i]);
      report_argv.push_back(argv[++i]);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  if (want_report) {
    abftecc::write_native_report(static_cast<int>(report_argv.size()),
                                 report_argv.data());
  }

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
