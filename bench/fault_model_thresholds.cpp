// Section 4, Equations (7)-(8): MTTF thresholds that decide whether ARE
// (ABFT + relaxed ECC) beats ASE (ABFT + strong ECC).
//
// Sweeps the ABFT per-recovery cost t_c and the ECC performance-impact gap
// (tau_ase - tau_are), printing the resulting MTTF_thr alongside the
// achieved MTTF of representative deployments so the decision rule is
// concrete: deploy ARE only where the machine's MTTF sits above the
// threshold row.
#include "bench/report.hpp"
#include "fault/model.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::fault;
  bench::Report rep(argc, argv, "Eq. (7)-(8): MTTF thresholds for ARE vs ASE",
                    "SC'13 Sec. 4 Case 1 analysis");

  std::printf("-- performance threshold (Eq. 7): MTTF_thr,t = t_c (1+tau_are) "
              "/ (tau_ase - tau_are) --\n");
  bench::row({"t_c(s)", "gap=2%", "gap=5%", "gap=10%", "gap=20%"});
  for (const double tc : {0.01, 0.1, 1.0, 10.0}) {
    std::vector<std::string> cells{bench::fmt(tc, 2)};
    for (const double gap : {0.02, 0.05, 0.10, 0.20}) {
      cells.push_back(bench::fmt_sci(mttf_threshold_perf(tc, 0.0, gap)) + "s");
      rep.scalar("mttf_thr_perf.tc" + bench::fmt(tc, 2) + ".gap" +
                     bench::fmt(gap, 2),
                 mttf_threshold_perf(tc, 0.0, gap));
    }
    bench::row(cells);
  }

  std::printf("\n-- energy threshold: MTTF_thr,en = e_c T0 (1+tau_are) / "
              "dE  (T0 = 3600s run) --\n");
  bench::row({"e_c(J)", "dE=10J", "dE=100J", "dE=1kJ"});
  for (const double ec : {1.0, 10.0, 100.0}) {
    std::vector<std::string> cells{bench::fmt(ec, 0)};
    for (const double de : {10.0, 100.0, 1000.0})
      cells.push_back(
          bench::fmt_sci(mttf_threshold_energy(ec, 3600.0, 0.0, de)) + "s");
    bench::row(cells);
  }

  std::printf("\n-- achieved per-node MTTF at Table 5 rates (8 GB node) --\n");
  const double node_mbit = 8.0 * 1024 * 1024 * 1024 * 8 / 1e6;
  bench::row({"scheme", "MTTF(s)", "MTTF(hours)"});
  for (const auto s :
       {ecc::Scheme::kNone, ecc::Scheme::kSecded, ecc::Scheme::kChipkill}) {
    const double mttf = mttf_seconds(table5_rate(s), node_mbit, 1.0, 1.0);
    bench::row({std::string(ecc::to_string(s)), bench::fmt_sci(mttf),
                bench::fmt_sci(mttf / 3600.0)});
    rep.scalar("mttf_seconds." + std::string(ecc::to_string(s)), mttf);
  }
  std::printf("\nEq. (8): MTTF_thr = max(threshold_perf, threshold_energy); "
              "deploy ARE when achieved MTTF exceeds it.\n");
  return 0;
}
