// Ablation (paper conclusion): the adaptive, co-designed policy vs the
// static deployments.
//
// A region lives through three epochs of environment: calm, a burst of
// hard faults, calm again. The static P_CK+No_ECC deployment eats every
// burst error as an expensive ABFT recovery; static chipkill pays the
// strong-ECC energy tax forever. The adaptive policy walks the tier
// ladder: it relaxes in calm weather and escalates during the burst --
// bounded recovery cost AND relaxed-tier energy most of the time.
#include "bench/report.hpp"
#include "fault/model.hpp"
#include "os/os.hpp"
#include "sim/adaptive.hpp"
#include "sim/platform.hpp"

namespace {

using namespace abftecc;

/// Energy model for the comparison: per-epoch memory energy of the tier
/// plus ABFT recovery energy for errors the tier lets through.
struct EpochCosts {
  double epoch_seconds = 100.0;
  double relax_saving_watts = 5.0;  // chipkill-vs-none dynamic power delta
  double e_c_joules = 50.0;

  double energy(ecc::Scheme tier, double raw_errors) const {
    const double base = tier == ecc::Scheme::kChipkill
                            ? relax_saving_watts * epoch_seconds
                            : (tier == ecc::Scheme::kSecded
                                   ? 0.3 * relax_saving_watts * epoch_seconds
                                   : 0.0);
    // Residual errors ABFT must recover, scaled by Table 5 ratios.
    const double residual_fraction =
        tier == ecc::Scheme::kChipkill ? 0.02 / 5000.0
        : tier == ecc::Scheme::kSecded ? 1300.0 / 5000.0
                                       : 1.0;
    return base + raw_errors * residual_fraction * e_c_joules;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv,
                    "Ablation: adaptive ECC policy vs static deployments",
                    "SC'13 conclusion (co-design & adaptive policy)");

  // Error weather per epoch (raw fault arrivals in the region, i.e. what a
  // no-ECC tier would hand to ABFT).
  std::vector<double> weather;
  for (int i = 0; i < 10; ++i) weather.push_back(0.0);   // calm
  for (int i = 0; i < 5; ++i) weather.push_back(40.0);   // hard-fault burst
  for (int i = 0; i < 10; ++i) weather.push_back(0.0);   // calm again

  sim::Session s = sim::Session::Builder().build();
  os::Os& os = s.os();
  void* region = os.malloc_ecc(4096, ecc::Scheme::kNone, "adaptive", true);

  sim::AdaptivePolicy::Options popt;
  popt.t_c_seconds = 1.0;
  popt.tau_relaxed = 0.0;
  popt.tau_strong = 0.05;
  popt.e_c_joules = 50.0;
  popt.t0_seconds = 100.0;
  popt.delta_e_joules = 500.0;
  popt.calm_epochs_to_relax = 3;
  sim::AdaptivePolicy policy(os, region, ecc::Scheme::kNone, popt);

  EpochCosts costs;
  double adaptive_j = 0, static_none_j = 0, static_ck_j = 0, static_sd_j = 0;

  bench::row({"epoch", "raw-errors", "adaptive-tier", "epoch-J(adaptive)"});
  for (std::size_t e = 0; e < weather.size(); ++e) {
    const ecc::Scheme tier = policy.current();
    const double residual =
        weather[e] * (tier == ecc::Scheme::kChipkill ? 0.02 / 5000.0
                      : tier == ecc::Scheme::kSecded ? 1300.0 / 5000.0
                                                     : 1.0);
    const double ej = costs.energy(tier, weather[e]);
    adaptive_j += ej;
    static_none_j += costs.energy(ecc::Scheme::kNone, weather[e]);
    static_sd_j += costs.energy(ecc::Scheme::kSecded, weather[e]);
    static_ck_j += costs.energy(ecc::Scheme::kChipkill, weather[e]);
    bench::row({std::to_string(e), bench::fmt(weather[e], 0),
                std::string(ecc::to_string(tier)), bench::fmt(ej, 1)});
    policy.on_epoch(costs.epoch_seconds,
                    static_cast<std::uint64_t>(residual + 0.5));
  }

  std::printf("\ntotal energy over the scenario (memory tax + ABFT recovery):\n");
  bench::row({"policy", "joules"});
  bench::row({"static No_ECC", bench::fmt(static_none_j, 0)});
  bench::row({"static SECDED", bench::fmt(static_sd_j, 0)});
  bench::row({"static chipkill", bench::fmt(static_ck_j, 0)});
  bench::row({"adaptive", bench::fmt(adaptive_j, 0)});
  std::printf("transitions taken: %llu\n",
              static_cast<unsigned long long>(policy.transitions()));
  rep.scalar("static_no_ecc_joules", static_none_j);
  rep.scalar("static_secded_joules", static_sd_j);
  rep.scalar("static_chipkill_joules", static_ck_j);
  rep.scalar("adaptive_joules", adaptive_j);
  rep.scalar("transitions", static_cast<double>(policy.transitions()));
  std::printf(
      "\nexpected: adaptive beats static chipkill in calm weather and "
      "static No_ECC during the burst.\n");
  return 0;
}
