// Section 4, Cases 1-4: end-to-end error-handling outcomes under the two
// deployments the paper compares:
//   ARE = ABFT + relaxed ECC (here P_CK+No_ECC: ABFT data without ECC)
//   ASE = ABFT + strong ECC  (chipkill everywhere)
// Each case injects a representative DRAM error pattern into an
// FT-DGEMM-protected structure on a fully wired node and reports what each
// deployment actually did: in-controller ECC correction, ABFT repair
// (optionally via the OS notification), or checkpoint/restart fallback.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "abft/ft_dgemm.hpp"
#include "abft/runtime.hpp"
#include "bench/report.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "os/os.hpp"
#include "sim/platform.hpp"

namespace abftecc {
namespace {

struct Outcome {
  std::string path;
  bool result_correct = false;
};

struct Deployment {
  sim::Session s;
  Matrix a, b, ref;
  abft::FtDgemm::Buffers buf;
  std::unique_ptr<abft::FtDgemm> ft;

  explicit Deployment(sim::Strategy strategy)
      : s(sim::Session::Builder().strategy(strategy).build()) {
    const std::size_t n = 64;
    Rng rng(7);
    a = Matrix::random(n, n, rng);
    b = Matrix::random(n, n, rng);
    ref = Matrix(n, n);
    linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
    buf = {s.abft_matrix(n + 1, n, "Ac"), s.abft_matrix(n, n + 1, "Br"),
           s.abft_matrix(n + 1, n + 1, "Cf")};
    ft = std::make_unique<abft::FtDgemm>(a.view(), b.view(), buf,
                                         abft::FtOptions{}, &s.runtime());
    ft->run(s.tap());
    s.flush_caches();
  }

  std::uint64_t phys_of(double* p) { return *s.os().virt_to_phys(p); }

  /// Touch every protected line (the application reading its data), then
  /// run one ABFT verification and classify the outcome.
  Outcome resolve() {
    Outcome out;
    for (std::size_t j = 0; j <= 64; ++j)
      for (std::size_t i = 0; i <= 64; ++i)
        s.memory().access(phys_of(&buf.cf(i, j)), memsim::AccessKind::kRead);
    const bool hw_notified = s.os().has_exposed_errors();
    const auto ecc_corrected = s.memory().controller().corrected_count();
    const auto st = ft->verify_and_correct(s.tap());
    out.result_correct = max_abs_diff(ft->result(), ref.view()) < 1e-7;
    if (st == abft::FtStatus::kUncorrectable || !out.result_correct) {
      out.path = "checkpoint/restart";
      out.result_correct = false;
    } else if (st == abft::FtStatus::kCorrectedErrors) {
      out.path = hw_notified ? "ABFT repair (notified)" : "ABFT repair";
    } else if (ecc_corrected > 0) {
      out.path = "ECC in-controller";
    } else {
      out.path = "clean";
    }
    return out;
  }
};

void run_case(bench::Report& rep, const char* slug, const char* label,
              fault::Case expected,
              const std::function<void(Deployment&)>& inject) {
  Deployment are(sim::Strategy::kPartialChipkillNoEcc);  // ABFT + relaxed
  Deployment ase(sim::Strategy::kWholeChipkill);  // strong ECC everywhere
  inject(are);
  inject(ase);
  const Outcome o_are = are.resolve();
  const Outcome o_ase = ase.resolve();
  std::printf("%-52s  [%s]\n", label,
              std::string(fault::to_string(expected)).c_str());
  std::printf("  ARE (ABFT+No_ECC):   %-24s result %s\n", o_are.path.c_str(),
              o_are.result_correct ? "correct" : "LOST");
  std::printf("  ASE (ABFT+chipkill): %-24s result %s\n\n",
              o_ase.path.c_str(), o_ase.result_correct ? "correct" : "LOST");
  const std::string key(slug);
  rep.note(key + ".are_path", o_are.path);
  rep.note(key + ".are_result", o_are.result_correct ? "correct" : "lost");
  rep.note(key + ".ase_path", o_ase.path);
  rep.note(key + ".ase_result", o_ase.result_correct ? "correct" : "lost");
}

}  // namespace
}  // namespace abftecc

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv,
                    "Section 4 Cases 1-4: end-to-end error handling",
                    "SC'13 Sec. 4 classification");

  // Case 1: a single DRAM bit flip, correctable by both sides. ASE fixes
  // it in the controller for ~1 pJ; ARE pays an ABFT verification pass.
  run_case(rep, "case1", "single bit flip in one element",
           fault::Case::kCase1BothCorrect, [](Deployment& d) {
             d.s.injector().inject_bit(d.phys_of(&d.buf.cf(10, 12)) + 6, 3);
           });

  // Case 2: two chips of the same line corrupted -- two bad symbols per
  // codeword, beyond chipkill's SSC-DSD -- while the damaged elements sit
  // in one matrix column, squarely inside ABFT's correction capability.
  run_case(rep, "case2", "two-chip corruption (beyond chipkill, within ABFT)",
           fault::Case::kCase2AbftOnly, [](Deployment& d) {
             const std::uint64_t line =
                 d.phys_of(&d.buf.cf(24, 24)) / 64 * 64;
             // Chips 8 and 9 carry high-mantissa bytes: detectable,
             // precisely repairable damage confined to one matrix column,
             // but two failed symbols per codeword -- beyond SSC-DSD.
             d.s.injector().inject_chip_kill(line, 8, 0xF);
             d.s.injector().inject_chip_kill(line, 9, 0xF);
           });

  // Case 3: four single-bit flips forming a 2x2 row/column grid. Strong
  // ECC corrects each flip independently; under relaxed ECC they reach the
  // application and the checksum residuals cannot be paired.
  run_case(rep, "case3", "2x2 grid of single-bit flips",
           fault::Case::kCase3EccOnly, [](Deployment& d) {
             for (double* e : {&d.buf.cf(10, 20), &d.buf.cf(10, 30),
                               &d.buf.cf(40, 20), &d.buf.cf(40, 30)})
               d.s.injector().inject_bit(d.phys_of(e) + 6, 2);
           });

  // Case 4: corruption while the lines are cache-resident (ECC never sees
  // it on either deployment) in an ambiguous grid: both sides fall back.
  run_case(rep, "case4", "cache-window burst, ambiguous pattern",
           fault::Case::kCase4Neither, [](Deployment& d) {
             for (double* e : {&d.buf.cf(10, 20), &d.buf.cf(10, 30),
                               &d.buf.cf(40, 20), &d.buf.cf(40, 30)}) {
               *e += 3.0;
               d.s.injector().corrupt_virtual_now(e, 0);  // flag as injected
               *e = d.ref(10, 20) >= 0 ? *e : *e;  // keep magnitudes equal
             }
             // Equal magnitudes defeat residual pairing deterministically.
             d.buf.cf(10, 20) = d.ref(10, 20) + 3.0;
             d.buf.cf(10, 30) = d.ref(10, 30) + 3.0;
             d.buf.cf(40, 20) = d.ref(40, 20) + 3.0;
             d.buf.cf(40, 30) = d.ref(40, 30) + 3.0;
           });

  std::printf(
      "paper shape: ARE resolves Cases 1-2 without restart (legacy ASE "
      "would crash on Case 2); Case 3 favors ASE; Case 4 sends both to the "
      "checkpoint.\n");
  return 0;
}
