// Table 1: ABFT performance improvement with simplified verification.
//
// The cooperative platform lets ABFT replace checksum recomputation with a
// check of the OS-exposed error log (Section 3.2.2). Following the paper,
// the three fail-continue kernels run in their worst-case deployment
// (verification every block iteration) under strong ECC with no relaxing,
// once with full verification and once hardware-assisted; the improvement
// is the reduction in simulated execution time.
//
// Paper: FT-DGEMM 8.6%, FT-Cholesky 6.0%, FT-Pred-CG 12.2%.
#include "bench/report.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  base.strategy = Strategy::kWholeChipkill;  // "without any ECC relaxing"
  bench::Report rep(argc, argv, "Table 1: simplified verification speedup",
                    "SC'13 Table 1", base);

  bench::row({"kernel", "full(s)", "simplified(s)", "improvement",
              "paper"});
  const struct {
    Kernel kernel;
    std::size_t period;  // worst case for the checksum kernels; CG checks
                         // "every few iterations" (Section 2.1)
    const char* paper;
  } rows[] = {{Kernel::kDgemm, 1, "8.6%"},
              {Kernel::kCholesky, 1, "6.0%"},
              {Kernel::kCg, 4, "12.2%"}};
  for (const auto& r : rows) {
    PlatformOptions full = base;
    full.verify_period = r.period;
    const RunMetrics mf = run_kernel(r.kernel, full);
    PlatformOptions hw = full;
    hw.hardware_assisted = true;
    const RunMetrics mh = run_kernel(r.kernel, hw);
    const double improvement = (mf.seconds - mh.seconds) / mf.seconds;
    bench::row({std::string(kernel_name(r.kernel)), bench::fmt(mf.seconds, 4),
                bench::fmt(mh.seconds, 4), bench::fmt_pct(improvement),
                r.paper});
    const std::string kn(kernel_name(r.kernel));
    rep.add_run(kn + "/full", mf);
    rep.add_run(kn + "/hw_assisted", mh);
    rep.scalar(kn + ".improvement", improvement);
  }
  std::printf(
      "\npaper shape: every kernel speeds up; CG (invariant check = full "
      "matvec) gains most.\n");
  return 0;
}
