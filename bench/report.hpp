// Shared table-formatting helpers for the experiment harnesses.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports so the shape can be
// compared directly (see EXPERIMENTS.md for the side-by-side record).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "memsim/config.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"
#include "sim/strategy.hpp"

namespace abftecc::bench {

inline void header(std::string_view experiment, std::string_view paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%.*s  (reproduces %.*s)\n", static_cast<int>(experiment.size()),
              experiment.data(), static_cast<int>(paper_ref.size()),
              paper_ref.data());
  std::printf("==================================================================\n");
}

/// Print the Table 3-style configuration actually used by a run.
inline void print_config(const sim::PlatformOptions& opt) {
  const auto cfg = memsim::SystemConfig::scaled(opt.cache_scale);
  std::printf(
      "config: L1 %zuKB/%uway, L2 %zuKB/%uway, %u chan x %u DIMM x %u rank, "
      "row %zuB, %s-page\n",
      cfg.l1.size_bytes / 1024, cfg.l1.ways, cfg.l2.size_bytes / 1024,
      cfg.l2.ways, cfg.org.channels, cfg.org.dimms_per_channel,
      cfg.org.ranks_per_dimm, cfg.org.row_bytes,
      opt.row_policy == memsim::RowBufferPolicy::kOpenPage ? "open" : "closed");
  std::printf(
      "inputs: DGEMM %zu, Cholesky %zu, CG %zu x %zu iters, HPL %zu (%zu "
      "procs), verify period %zu\n\n",
      opt.dgemm_dim, opt.cholesky_dim, opt.cg_dim, opt.cg_iterations,
      opt.hpl_dim, opt.hpl_processes, opt.verify_period);
}

/// Simple fixed-width row printing.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

/// One experiment's machine-readable record. Construct it first thing in
/// main(): it parses the shared CLI flags into `opt` and prints the usual
/// header/config banner. Feed it every kernel run (and any derived scalar
/// figures of merit); on destruction it writes the `--json` report and the
/// `--trace` Chrome timeline if either was requested.
///
/// The JSON schema is stable (see DESIGN.md "Observability"): top-level
/// keys schema_version / experiment / paper_ref / config / runs / scalars /
/// metrics; each run carries cycles, instructions, ipc, seconds, an energy
/// split, memory-system counters, and the FT recovery counters.
class Report {
 public:
  Report(int argc, char** argv, std::string_view experiment,
         std::string_view paper_ref, sim::PlatformOptions& opt)
      : experiment_(experiment), paper_ref_(paper_ref), opt_(&opt) {
    cli_ = sim::parse_cli(argc, argv, opt);
    header(experiment_, paper_ref_);
    print_config(opt);
  }

  /// For harnesses that do not run the simulated platform (wall-clock or
  /// analytical studies): parses only the output flags, prints the header
  /// without a config banner, and reports `"config": null`.
  Report(int argc, char** argv, std::string_view experiment,
         std::string_view paper_ref)
      : experiment_(experiment), paper_ref_(paper_ref) {
    sim::PlatformOptions ignored;
    cli_ = sim::parse_cli(argc, argv, ignored);
    header(experiment_, paper_ref_);
  }

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  ~Report() {
    // Close any still-open profiling interval so the report and the merged
    // timeline see final attribution (no-op when profiling never ran).
    obs::default_profiler().stop();
    if (!cli_.json_path.empty()) write_json(cli_.json_path.c_str());
    if (!cli_.metrics_out_path.empty())
      write_metrics_out(cli_.metrics_out_path.c_str());
    if (!cli_.trace_path.empty())
      obs::default_tracer().write_chrome_trace(cli_.trace_path);
    if (!cli_.chrome_trace_path.empty() &&
        obs::write_merged_chrome_trace(cli_.chrome_trace_path,
                                       obs::default_tracer(),
                                       obs::default_profiler()))
      std::printf("wrote merged Chrome trace: %s\n",
                  cli_.chrome_trace_path.c_str());
  }

  void add_run(std::string_view label, const sim::RunMetrics& m) {
    runs_.emplace_back(std::string(label), m);
  }

  /// Record a derived figure of merit (a ratio, spread, threshold, ...).
  void scalar(std::string_view name, double v) {
    scalars_.emplace_back(std::string(name), v);
  }

  /// Record a qualitative outcome (an error-handling path, a verdict, ...).
  void note(std::string_view name, std::string_view text) {
    notes_.emplace_back(std::string(name), std::string(text));
  }

  /// Attach a pre-serialized JSON value under a custom top-level key (the
  /// campaign uses this for its latency histograms).
  void section(std::string_view name, std::string json) {
    sections_.emplace_back(std::string(name), std::move(json));
  }

  [[nodiscard]] const sim::CliReport& cli() const { return cli_; }

 private:
  /// The telemetry plane's textfile mode (--metrics-out): OpenMetrics
  /// exposition of the final default-registry snapshot, labeled with the
  /// experiment name. Output passes tools/promcheck.py.
  void write_metrics_out(const char* path) const {
    obs::OpenMetricsWriter om;
    om.snapshot(obs::default_registry().snapshot(),
                {{"experiment", experiment_}});
    const std::string text = om.take();
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "report: cannot open '%s' for writing\n", path);
      return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote OpenMetrics exposition: %s\n", path);
  }

  void write_json(const char* path) const {
    obs::JsonWriter w;
    w.begin_object();
    w.field("schema_version", 1);
    w.field("experiment", experiment_);
    w.field("paper_ref", paper_ref_);
    w.key("config");
    write_config(w);
    w.key("runs");
    w.begin_array();
    for (const auto& [label, m] : runs_) write_run(w, label, m);
    w.end_array();
    w.key("scalars");
    w.begin_object();
    for (const auto& [name, v] : scalars_) w.field(name, v);
    w.end_object();
    w.key("notes");
    w.begin_object();
    for (const auto& [name, text] : notes_) w.field(name, text);
    w.end_object();
    w.key("metrics");
    w.raw(obs::default_registry().to_json());
    w.key("profile");
    if (const auto& prof = obs::default_profiler(); !prof.nodes().empty())
      w.raw(prof.to_json());
    else
      w.null();
    for (const auto& [name, json] : sections_) w.key(name).raw(json);
    w.end_object();
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "report: cannot open '%s' for writing\n", path);
      return;
    }
    const std::string text = w.take();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote JSON report: %s\n", path);
  }

  void write_config(obs::JsonWriter& w) const {
    if (opt_ == nullptr) {
      w.null();
      return;
    }
    const auto& o = *opt_;
    w.begin_object();
    w.field("strategy", sim::spec(o.strategy).label);
    w.field("dgemm_dim", static_cast<std::uint64_t>(o.dgemm_dim));
    w.field("cholesky_dim", static_cast<std::uint64_t>(o.cholesky_dim));
    w.field("cg_dim", static_cast<std::uint64_t>(o.cg_dim));
    w.field("cg_iterations", static_cast<std::uint64_t>(o.cg_iterations));
    w.field("hpl_dim", static_cast<std::uint64_t>(o.hpl_dim));
    w.field("hpl_processes", static_cast<std::uint64_t>(o.hpl_processes));
    w.field("verify_period", static_cast<std::uint64_t>(o.verify_period));
    w.field("hardware_assisted", o.hardware_assisted);
    w.field("use_dgms", o.use_dgms);
    w.field("seed", static_cast<std::uint64_t>(o.seed));
    w.field("cache_scale", static_cast<std::uint64_t>(o.cache_scale));
    w.field("row_policy",
            o.row_policy == memsim::RowBufferPolicy::kOpenPage ? "open_page"
                                                               : "closed_page");
    w.end_object();
  }

  static void write_run(obs::JsonWriter& w, const std::string& label,
                        const sim::RunMetrics& m) {
    w.begin_object();
    w.field("label", label);
    w.field("kernel", sim::kernel_name(m.kernel));
    w.field("strategy", sim::spec(m.strategy).label);
    w.field("backend", to_string(m.backend));
    w.field("cycles", m.sys.cpu_cycles);
    w.field("instructions", m.sys.instructions);
    w.field("ipc", m.ipc);
    w.field("seconds", m.seconds);
    w.field("status", abft::to_string(m.status));
    w.key("energy");
    w.begin_object();
    w.field("mem_dynamic_pj", m.mem_dynamic_pj);
    w.field("mem_standby_pj", m.mem_standby_pj);
    w.field("processor_pj", m.processor_pj);
    w.field("mem_dynamic_abft_pj", m.mem_dynamic_abft_pj);
    w.field("mem_dynamic_other_pj", m.mem_dynamic_other_pj);
    w.field("memory_pj", m.memory_pj());
    w.field("system_pj", m.system_pj());
    w.end_object();
    w.key("memory");
    w.begin_object();
    w.field("mem_refs", m.sys.mem_refs);
    w.field("demand_misses", m.sys.demand_misses);
    w.field("demand_misses_abft", m.sys.demand_misses_abft);
    w.field("demand_misses_other", m.sys.demand_misses_other);
    w.field("writebacks", m.sys.writebacks);
    w.field("l1_miss_rate", m.l1.miss_rate());
    w.field("l2_miss_rate", m.l2.miss_rate());
    w.field("dram_reads", m.dram.reads);
    w.field("dram_writes", m.dram.writes);
    w.field("dram_activates", m.dram.activates);
    w.field("row_hit_rate", m.dram.row_hit_rate());
    w.end_object();
    w.key("ft");
    w.begin_object();
    w.field("verifications", m.ft.verifications);
    w.field("errors_detected", m.ft.errors_detected);
    w.field("errors_corrected", m.ft.errors_corrected);
    w.field("hw_notifications_used", m.ft.hw_notifications_used);
    w.field("encode_seconds", m.ft.encode_seconds);
    w.field("verify_seconds", m.ft.verify_seconds);
    w.field("correct_seconds", m.ft.correct_seconds);
    w.end_object();
    w.field("refs_abft", m.refs_abft);
    w.field("refs_other", m.refs_other);
    w.field("abft_bytes", m.abft_bytes);
    w.field("total_bytes", m.total_bytes);
    w.field("exposed_dropped", m.exposed_dropped);
    w.end_object();
  }

  std::string experiment_;
  std::string paper_ref_;
  sim::PlatformOptions* opt_ = nullptr;
  sim::CliReport cli_;
  std::vector<std::pair<std::string, sim::RunMetrics>> runs_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace abftecc::bench
