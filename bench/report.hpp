// Shared table-formatting helpers for the experiment harnesses.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the same rows/series the paper reports so the shape can be
// compared directly (see EXPERIMENTS.md for the side-by-side record).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "memsim/config.hpp"
#include "sim/platform.hpp"

namespace abftecc::bench {

inline void header(std::string_view experiment, std::string_view paper_ref) {
  std::printf("==================================================================\n");
  std::printf("%.*s  (reproduces %.*s)\n", static_cast<int>(experiment.size()),
              experiment.data(), static_cast<int>(paper_ref.size()),
              paper_ref.data());
  std::printf("==================================================================\n");
}

/// Print the Table 3-style configuration actually used by a run.
inline void print_config(const sim::PlatformOptions& opt) {
  const auto cfg = memsim::SystemConfig::scaled(opt.cache_scale);
  std::printf(
      "config: L1 %zuKB/%uway, L2 %zuKB/%uway, %u chan x %u DIMM x %u rank, "
      "row %zuB, %s-page\n",
      cfg.l1.size_bytes / 1024, cfg.l1.ways, cfg.l2.size_bytes / 1024,
      cfg.l2.ways, cfg.org.channels, cfg.org.dimms_per_channel,
      cfg.org.ranks_per_dimm, cfg.org.row_bytes,
      opt.row_policy == memsim::RowBufferPolicy::kOpenPage ? "open" : "closed");
  std::printf(
      "inputs: DGEMM %zu, Cholesky %zu, CG %zu x %zu iters, HPL %zu (%zu "
      "procs), verify period %zu\n\n",
      opt.dgemm_dim, opt.cholesky_dim, opt.cg_dim, opt.cg_iterations,
      opt.hpl_dim, opt.hpl_processes, opt.verify_period);
}

/// Simple fixed-width row printing.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

inline std::string fmt_pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

}  // namespace abftecc::bench
