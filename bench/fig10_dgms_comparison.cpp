// Figure 10: comparison with the state-of-the-art flexible ECC (DGMS).
//
// DGMS picks ECC granularity from spatial-pattern prediction and is blind
// to ABFT. Paper shape: for the high-locality FT-DGEMM, DGMS converges to
// whole-chipkill behaviour, so the ABFT-directed scheme wins ~18%
// performance and ~49% memory energy; for FT-Pred-CG, performance is close
// but DGMS still spends ~24% more memory energy because it assigns chipkill
// to accesses that ABFT already covers.
#include "bench/report.hpp"
#include "sim/platform.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  bench::Report rep(argc, argv, "Figure 10: DGMS vs ABFT-directed ECC",
                    "SC'13 Fig. 10", base);

  for (const auto kernel : {Kernel::kDgemm, Kernel::kCg}) {
    PlatformOptions none = base;
    none.strategy = Strategy::kNoEcc;
    const RunMetrics m_none = run_kernel(kernel, none);

    PlatformOptions dgms = base;
    dgms.strategy = Strategy::kWholeChipkill;  // DGMS decides per access
    dgms.use_dgms = true;
    const RunMetrics m_dgms = run_kernel(kernel, dgms);

    PlatformOptions ours = base;
    ours.strategy = Strategy::kPartialChipkillSecded;  // same CK + SD pair
    const RunMetrics m_ours = run_kernel(kernel, ours);

    std::printf("-- %s (normalized to No_ECC) --\n",
                std::string(kernel_name(kernel)).c_str());
    bench::row({"scheme", "time", "memory-E", "system-E"});
    const auto print = [&](const char* name, const RunMetrics& m) {
      bench::row({name, bench::fmt(m.seconds / m_none.seconds),
                  bench::fmt(m.memory_pj() / m_none.memory_pj()),
                  bench::fmt(m.system_pj() / m_none.system_pj())});
    };
    print("DGMS", m_dgms);
    print("ours(P_CK+P_SD)", m_ours);
    std::printf("   ours vs DGMS: time %s, memory energy %s\n\n",
                bench::fmt_pct(1.0 - m_ours.seconds / m_dgms.seconds).c_str(),
                bench::fmt_pct(1.0 - m_ours.memory_pj() / m_dgms.memory_pj())
                    .c_str());
    const std::string kn(kernel_name(kernel));
    rep.add_run(kn + "/No_ECC", m_none);
    rep.add_run(kn + "/DGMS", m_dgms);
    rep.add_run(kn + "/ours", m_ours);
    rep.scalar(kn + ".time_saving_vs_dgms",
               1.0 - m_ours.seconds / m_dgms.seconds);
    rep.scalar(kn + ".memory_energy_saving_vs_dgms",
               1.0 - m_ours.memory_pj() / m_dgms.memory_pj());
  }
  std::printf(
      "paper anchors: DGEMM ours beats DGMS by ~18%% time / ~49%% memory "
      "energy; CG time ~equal, ~24%% less memory energy.\n");
  return 0;
}
