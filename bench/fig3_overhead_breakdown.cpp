// Figure 3: ABFT overhead breakdown -- checksum maintenance vs verification
// share of the ABFT overhead, for the three fail-continue kernels, one task
// each, measured on the simulated platform with the phase profiler
// (obs/profile.hpp) attributing every simulated cycle to a phase.
//
// No hand subtraction: the profiler's self-time attribution is exact by
// construction (each cycle lands in exactly one phase node), and this
// harness asserts it -- the sum of phase cycles must equal the session's
// total simulated cycles to within 0.1% (it matches exactly).
//
// Expected shape (paper): verification is responsible for a large part of
// the overhead for all three kernels.
#include <cmath>
#include <cstdlib>

#include "bench/report.hpp"
#include "obs/profile.hpp"

namespace abftecc {
namespace {

struct Attribution {
  sim::RunMetrics metrics;
  obs::CounterSample total;    ///< profiler-attributed sum over all phases
  obs::CounterSample compute;  ///< kernel numerical work
  obs::CounterSample encode;
  obs::CounterSample verify;
  obs::CounterSample other;    ///< locate + correct + unattributed root
  double residual = 0.0;       ///< |attributed - simulated| / simulated
};

Attribution profile_kernel(sim::Kernel k, const sim::PlatformOptions& opt) {
  Attribution out;
  sim::Session session = sim::Session::Builder(opt).build();
  out.metrics = session.run(k);
  obs::PhaseProfiler& prof = session.profiler();
  prof.stop();
  out.total = prof.total();
  out.compute = prof.phase_total(obs::Phase::kCompute);
  out.encode = prof.phase_total(obs::Phase::kEncode);
  out.verify = prof.phase_total(obs::Phase::kVerify);
  out.other = out.total;
  out.other.cycles -= out.compute.cycles + out.encode.cycles +
                      out.verify.cycles;
  const auto simulated = static_cast<double>(out.metrics.sys.cpu_cycles);
  out.residual = simulated == 0.0
                     ? 0.0
                     : std::abs(static_cast<double>(out.total.cycles) -
                                simulated) /
                           simulated;
  return out;
}

void report_kernel(const char* name, const Attribution& a,
                   bench::Report& rep) {
  const auto cycles = [](const obs::CounterSample& s) {
    return static_cast<double>(s.cycles);
  };
  const double total = cycles(a.total);
  const double overhead =
      cycles(a.encode) + cycles(a.verify) + cycles(a.other);
  const double checksum_share = overhead == 0.0 ? 0.0 : cycles(a.encode) / overhead;
  const double verify_share = overhead == 0.0 ? 0.0 : cycles(a.verify) / overhead;
  bench::row({name, bench::fmt_sci(total),
              bench::fmt_pct(cycles(a.compute) / total),
              bench::fmt_pct(overhead / cycles(a.compute)),
              bench::fmt_pct(checksum_share), bench::fmt_pct(verify_share)});
  const std::string kn(name);
  rep.scalar(kn + ".cycles_total", total);
  rep.scalar(kn + ".compute_share", cycles(a.compute) / total);
  rep.scalar(kn + ".encode_share", cycles(a.encode) / total);
  rep.scalar(kn + ".verify_share", cycles(a.verify) / total);
  rep.scalar(kn + ".overhead", overhead / cycles(a.compute));
  rep.scalar(kn + ".checksum_share", checksum_share);
  rep.scalar(kn + ".verify_overhead_share", verify_share);
  rep.scalar(kn + ".attribution_residual", a.residual);
  if (a.residual > 1e-3) {
    std::fprintf(stderr,
                 "%s: phase attribution residual %.3g exceeds 0.1%% of total "
                 "simulated cycles\n",
                 name, a.residual);
    std::exit(1);
  }
}

}  // namespace
}  // namespace abftecc

int main(int argc, char** argv) {
  using namespace abftecc;
  sim::PlatformOptions opt;
  // Attribution, not throughput: modest inputs keep the simulated runs
  // quick, and verify_period 1 is the worst-case deployment (Sec. 3.2.2)
  // the paper's figure describes.
  opt.dgemm_dim = 160;
  opt.cholesky_dim = 224;
  opt.cg_dim = 320;
  opt.cg_iterations = 6;
  opt.verify_period = 1;
  bench::Report rep(argc, argv, "Figure 3: ABFT overhead breakdown",
                    "SC'13 Fig. 3 (+ overhead context of Sec. 3.2.2)", opt);
  opt.profile = true;  // the whole point of this harness
  bench::row({"kernel", "cycles", "compute%", "overhead", "checksum%",
              "verify%"});
  report_kernel("FT-DGEMM",
                profile_kernel(sim::Kernel::kDgemm, opt), rep);
  report_kernel("FT-Cholesky",
                profile_kernel(sim::Kernel::kCholesky, opt), rep);
  report_kernel("FT-Pred-CG", profile_kernel(sim::Kernel::kCg, opt), rep);
  std::printf(
      "\npaper shape: verification dominates the ABFT overhead for all three "
      "kernels.\n(overhead = non-compute share of attributed cycles; "
      "checksum%%/verify%% split that overhead)\n");
  return 0;
}
