// Figure 3: ABFT overhead breakdown -- checksum maintenance vs verification
// share of total ABFT overhead, for the three fail-continue kernels, one
// task each, measured on real (uninstrumented, NullTap) runs.
//
// Expected shape (paper): verification is responsible for a large part of
// the overhead for all three kernels.
#include <algorithm>
#include <chrono>
#include <vector>
#if defined(_OPENMP)
#include <omp.h>
#endif

#include "abft/ft_cg.hpp"
#include "abft/ft_cholesky.hpp"
#include "abft/ft_dgemm.hpp"
#include "bench/report.hpp"
#include "linalg/factor.hpp"
#include "linalg/generate.hpp"

namespace abftecc {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Breakdown {
  // Minimum over repeats: the robust estimator against scheduler noise at
  // millisecond scales.
  double total = 1e99;
  double plain = 1e99;
  double verify = 0.0;
  double checksum = 0.0;  // encode + correction-free residue of overhead

  void take_plain(double t) { plain = std::min(plain, t); }
  void take_ft(double t, double v, double c) {
    if (t < total) {
      total = t;
      verify = v;
      checksum = c;
    }
  }

  void print(const char* name, bench::Report& rep) const {
    const double overhead = std::max(total - plain, verify + checksum);
    const double v = verify / overhead;
    const double c = 1.0 - v;
    bench::row({name, bench::fmt(plain, 3) + "s", bench::fmt(total, 3) + "s",
                bench::fmt_pct(overhead / plain), bench::fmt_pct(c),
                bench::fmt_pct(v)});
    const std::string kn(name);
    rep.scalar(kn + ".plain_seconds", plain);
    rep.scalar(kn + ".ft_seconds", total);
    rep.scalar(kn + ".overhead", overhead / plain);
    rep.scalar(kn + ".checksum_share", c);
    rep.scalar(kn + ".verify_share", v);
  }
};

Breakdown bench_dgemm(std::size_t n, std::size_t repeats) {
  Breakdown out;
  Rng rng(1);
  Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
  for (std::size_t r = 0; r < repeats; ++r) {
    {
      Matrix c(n, n);
      const double t0 = now_seconds();
      linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
      out.take_plain(now_seconds() - t0);
    }
    {
      Matrix ac(n + 1, n), br(n, n + 1), cf(n + 1, n + 1);
      abft::FtOptions opt;
      opt.verify_period = 1;  // worst-case deployment (Section 3.2.2)
      abft::FtDgemm ft(a.view(), b.view(), {ac.view(), br.view(), cf.view()},
                       opt);
      const double t0 = now_seconds();
      ft.run();
      out.take_ft(now_seconds() - t0, ft.stats().verify_seconds,
                  ft.stats().encode_seconds);
    }
  }
  // Checksum overhead also includes the extra checksum row/column carried
  // through the multiply; attribute the non-verify remainder to it.
  out.checksum = std::max(out.total - out.plain - out.verify, out.checksum);
  return out;
}

Breakdown bench_cholesky(std::size_t n, std::size_t repeats) {
  Breakdown out;
  Rng rng(2);
  Matrix a = Matrix::random_spd(n, rng);
  for (std::size_t r = 0; r < repeats; ++r) {
    {
      Matrix w = a;
      const double t0 = now_seconds();
      linalg::potrf(w.view());
      out.take_plain(now_seconds() - t0);
    }
    {
      Matrix w = a;
      std::vector<double> sum(n), weighted(n);
      abft::FtOptions opt;
      opt.verify_period = 1;
      abft::FtCholesky ft({w.view(), sum, weighted}, opt);
      const double t0 = now_seconds();
      ft.run();
      out.take_ft(now_seconds() - t0, ft.stats().verify_seconds,
                  ft.stats().encode_seconds);
    }
  }
  out.checksum = std::max(out.total - out.plain - out.verify, out.checksum);
  return out;
}

Breakdown bench_cg(std::size_t n, std::size_t iters, std::size_t repeats) {
  Breakdown out;
  Rng rng(3);
  linalg::LinearSystem sys = linalg::make_spd_system(n, rng);
  linalg::CgOptions copt;
  copt.max_iterations = iters;
  copt.tolerance = 1e-30;
  for (std::size_t r = 0; r < repeats; ++r) {
    {
      std::vector<double> x(n, 0.0);
      const double t0 = now_seconds();
      linalg::pcg_solve(sys.a.view(), sys.b, x, copt);
      out.take_plain(now_seconds() - t0);
    }
    {
      std::vector<double> x(n, 0.0), rr(n), z(n), p(n), q(n);
      std::vector<double> b = sys.b;
      abft::FtOptions opt;
      opt.verify_period = 4;
      abft::FtCg ft(sys.a.view(), b, {x, rr, z, p, q}, copt, opt);
      const double t0 = now_seconds();
      ft.run();
      out.take_ft(now_seconds() - t0, ft.stats().verify_seconds,
                  ft.stats().encode_seconds);
    }
  }
  out.checksum = std::max(out.total - out.plain - out.verify, out.checksum);
  return out;
}

}  // namespace
}  // namespace abftecc

int main(int argc, char** argv) {
#if defined(_OPENMP)
  // This harness measures phase ATTRIBUTION (checksum vs verification
  // share), not throughput: single-threaded runs keep the wall-clock
  // split stable on small shared machines.
  omp_set_num_threads(1);
#endif
  using namespace abftecc;
  bench::Report rep(argc, argv, "Figure 3: ABFT overhead breakdown",
                    "SC'13 Fig. 3 (+ overhead context of Sec. 3.2.2)");
  bench::row({"kernel", "plain", "ft-total", "overhead", "checksum%",
              "verify%"});
  bench_dgemm(384, 7).print("FT-DGEMM", rep);
  bench_cholesky(512, 7).print("FT-Cholesky", rep);
  bench_cg(768, 150, 5).print("FT-Pred-CG", rep);
  std::printf(
      "\npaper shape: verification dominates the ABFT overhead for all three "
      "kernels.\n");
  return 0;
}
