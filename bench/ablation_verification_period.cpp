// Ablation (Section 2.1 / 3.2.2): ABFT verification period.
//
// "Every few iterations" trades verification overhead against detection
// latency (and against the chance that a second error lands in the same
// column before the first is repaired). This harness sweeps the period for
// FT-DGEMM on the simulator, reporting simulated time overhead vs the
// hardware-assisted deployment, which makes the period nearly free.
#include "bench/report.hpp"
#include "sim/platform.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  base.strategy = Strategy::kWholeChipkill;
  bench::Report rep(argc, argv, "Ablation: verification period",
                    "SC'13 Sec. 2.1 / 3.2.2", base);

  // Verification-free floor: one giant period.
  PlatformOptions floor_opt = base;
  floor_opt.verify_period = 1u << 20;
  const double floor_s = run_kernel(Kernel::kDgemm, floor_opt).seconds;

  bench::row({"period", "full(s)", "overhead", "hw-assisted(s)",
              "hw-overhead", "verifies"});
  for (const std::size_t period : {1, 2, 4, 8, 16}) {
    PlatformOptions full = base;
    full.verify_period = period;
    const RunMetrics mf = run_kernel(Kernel::kDgemm, full);
    PlatformOptions hw = full;
    hw.hardware_assisted = true;
    const RunMetrics mh = run_kernel(Kernel::kDgemm, hw);
    bench::row({std::to_string(period), bench::fmt(mf.seconds, 4),
                bench::fmt_pct(mf.seconds / floor_s - 1.0),
                bench::fmt(mh.seconds, 4),
                bench::fmt_pct(mh.seconds / floor_s - 1.0),
                std::to_string(mf.ft.verifications)});
    const std::string key = "period" + std::to_string(period);
    rep.add_run(key + "/full", mf);
    rep.add_run(key + "/hw_assisted", mh);
    rep.scalar(key + ".full_overhead", mf.seconds / floor_s - 1.0);
    rep.scalar(key + ".hw_overhead", mh.seconds / floor_s - 1.0);
  }
  std::printf(
      "\nexpected: full-verification overhead grows steeply as the period "
      "shrinks; the cooperative path stays near the floor at every "
      "period.\n");
  return 0;
}
