#!/usr/bin/env python3
"""Diff two bench-report JSON files produced with `<bench binary> --json`.

Runs are matched by label, scalars by name. Prints per-run deltas for the
headline quantities (cycles, IPC, simulated seconds, memory/system energy)
and flags relative changes beyond a threshold.

Usage:
    python3 bench/compare_runs.py baseline.json candidate.json [--threshold 0.02]

Exit status: 0 if no quantity moved by more than the threshold, 1 otherwise
(so CI can gate on it), 2 on usage/schema errors.
"""
import argparse
import json
import sys

# Top-level keys this tool understands. Reports may carry extra custom
# sections (Report::section: the campaign adds "latency" histograms and a
# "lineage" summary); those are noted and skipped, never a schema error,
# so older checkouts of this script keep working on newer reports.
KNOWN_SECTIONS = {
    "schema_version", "experiment", "paper_ref", "config",
    "runs", "scalars", "notes", "metrics", "profile",
}

RUN_FIELDS = [
    ("cycles", lambda r: r["cycles"]),
    ("ipc", lambda r: r["ipc"]),
    ("seconds", lambda r: r["seconds"]),
    ("memory_pj", lambda r: r["energy"]["memory_pj"]),
    ("system_pj", lambda r: r["energy"]["system_pj"]),
    ("errors_corrected", lambda r: r["ft"]["errors_corrected"]),
]


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"error: cannot read {path}: {e}")
    if doc.get("schema_version") != 1:
        die(f"error: {path}: unsupported schema_version "
            f"{doc.get('schema_version')!r}")
    return doc


def rel_delta(old, new):
    if old == new:
        return 0.0
    if old == 0:
        return float("inf")
    return (new - old) / abs(old)


def fmt_delta(d):
    if d == float("inf"):
        return "+inf"
    return f"{d:+.2%}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.02,
                    help="relative change that counts as a difference "
                         "(default 0.02 = 2%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if base.get("experiment") != cand.get("experiment"):
        print(f"note: comparing different experiments: "
              f"{base.get('experiment')!r} vs {cand.get('experiment')!r}")
    unknown = sorted((set(base) | set(cand)) - KNOWN_SECTIONS)
    if unknown:
        print(f"note: ignoring unknown section(s): {', '.join(unknown)}")

    flagged = 0
    base_runs = {r["label"]: r for r in base.get("runs", [])}
    cand_runs = {r["label"]: r for r in cand.get("runs", [])}

    only_base = sorted(set(base_runs) - set(cand_runs))
    only_cand = sorted(set(cand_runs) - set(base_runs))
    for label in only_base:
        print(f"run only in baseline: {label}")
    for label in only_cand:
        print(f"run only in candidate: {label}")
    flagged += len(only_base) + len(only_cand)

    shared = [r["label"] for r in base.get("runs", [])
              if r["label"] in cand_runs]
    if shared:
        print(f"{'run':<40} {'field':<18} {'baseline':>14} {'candidate':>14} "
              f"{'delta':>8}")
    for label in shared:
        b, c = base_runs[label], cand_runs[label]
        for name, get in RUN_FIELDS:
            try:
                vb, vc = get(b), get(c)
            except KeyError:
                continue
            d = rel_delta(vb, vc)
            mark = ""
            if abs(d) > args.threshold:
                flagged += 1
                mark = "  <-- "
            if vb != vc or abs(d) > args.threshold:
                print(f"{label:<40} {name:<18} {vb:>14.6g} {vc:>14.6g} "
                      f"{fmt_delta(d):>8}{mark}")

    sb, sc = base.get("scalars", {}), cand.get("scalars", {})
    for name in sorted(set(sb) | set(sc)):
        if name not in sb:
            print(f"scalar only in candidate: {name} = {sc[name]:.6g}")
            continue
        if name not in sc:
            print(f"scalar only in baseline: {name} = {sb[name]:.6g}")
            continue
        d = rel_delta(sb[name], sc[name])
        if abs(d) > args.threshold:
            flagged += 1
            print(f"scalar {name}: {sb[name]:.6g} -> {sc[name]:.6g} "
                  f"({fmt_delta(d)})  <--")

    if flagged:
        print(f"\n{flagged} difference(s) beyond threshold "
              f"{args.threshold:.0%}")
        return 1
    print("no differences beyond threshold "
          f"{args.threshold:.0%} ({len(shared)} runs compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
