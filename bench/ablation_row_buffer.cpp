// Ablation (Section 5.1's row-buffer observation): how the row-buffer
// policy changes what partial ECC can save.
//
// The paper attributes the gap between the reference-ratio-predicted
// saving and the measured dynamic saving to row-buffer hits ("if access
// locality is good ... the dynamic energy saving is limited"). Closed-page
// mode removes those hits: every access pays an activation, so the dynamic
// energy spread across strategies widens.
#include "bench/report.hpp"
#include "sim/platform.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions base;
  bench::Report rep(argc, argv,
                    "Ablation: row-buffer policy vs partial-ECC savings",
                    "SC'13 Sec. 5.1 row-buffer discussion", base);
  for (const auto policy : {memsim::RowBufferPolicy::kOpenPage,
                            memsim::RowBufferPolicy::kClosedPage}) {
    const char* pname =
        policy == memsim::RowBufferPolicy::kOpenPage ? "open" : "closed";
    std::printf("-- %s page --\n", pname);
    bench::row({"kernel", "rowhit", "W_CK dyn", "P_CK dyn", "dyn saving"});
    for (const auto kernel : {Kernel::kDgemm, Kernel::kCg}) {
      PlatformOptions whole = base;
      whole.row_policy = policy;
      whole.strategy = Strategy::kWholeChipkill;
      const RunMetrics w = run_kernel(kernel, whole);
      PlatformOptions part = whole;
      part.strategy = Strategy::kPartialChipkillNoEcc;
      const RunMetrics p = run_kernel(kernel, part);
      bench::row({std::string(kernel_name(kernel)),
                  bench::fmt(w.dram.row_hit_rate(), 2),
                  bench::fmt_sci(joules(w.mem_dynamic_pj)) + "J",
                  bench::fmt_sci(joules(p.mem_dynamic_pj)) + "J",
                  bench::fmt_pct(1.0 - p.mem_dynamic_pj / w.mem_dynamic_pj)});
      const std::string kn =
          std::string(pname) + "/" + std::string(kernel_name(kernel));
      rep.add_run(kn + "/W_CK", w);
      rep.add_run(kn + "/P_CK", p);
      rep.scalar(kn + ".dynamic_saving",
                 1.0 - p.mem_dynamic_pj / w.mem_dynamic_pj);
    }
    std::printf("\n");
  }
  std::printf("expected: closed-page kills row hits, raising absolute "
              "dynamic energy for every strategy.\n");
  return 0;
}
