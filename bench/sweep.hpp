// Shared 6-strategy x 4-kernel sweep used by the Figure 5/6/7 harnesses.
#pragma once

#include <array>
#include <map>

#include "bench/report.hpp"
#include "sim/platform.hpp"
#include "sim/strategy.hpp"

namespace abftecc::bench {

inline constexpr std::array<sim::Kernel, 4> kSweepKernels = {
    sim::Kernel::kDgemm, sim::Kernel::kCholesky, sim::Kernel::kCg,
    sim::Kernel::kHpl};

struct Sweep {
  std::map<std::pair<int, int>, sim::RunMetrics> results;

  const sim::RunMetrics& at(sim::Kernel k, sim::Strategy s) const {
    return results.at({static_cast<int>(k), static_cast<int>(s)});
  }
};

inline Sweep run_sweep(const sim::PlatformOptions& base) {
  Sweep sweep;
  for (const auto kernel : kSweepKernels) {
    for (const auto strategy : sim::kAllStrategies) {
      sim::PlatformOptions opt = base;
      opt.strategy = strategy;
      sweep.results.emplace(
          std::make_pair(static_cast<int>(kernel), static_cast<int>(strategy)),
          sim::run_kernel(kernel, opt));
    }
  }
  return sweep;
}

/// Record every sweep cell in the report as "<kernel>/<strategy>".
inline void add_sweep(Report& rep, const Sweep& sweep) {
  for (const auto kernel : kSweepKernels)
    for (const auto strategy : sim::kAllStrategies)
      rep.add_run(std::string(sim::kernel_name(kernel)) + "/" +
                      std::string(sim::spec(strategy).label),
                  sweep.at(kernel, strategy));
}

}  // namespace abftecc::bench
