// Figure 9: strong-scaling comparison of energy benefit vs ABFT recovery
// cost with fault modeling, FT-CG, 100 .. 3200 processes (mixed deployment:
// weak-scaled to 100 processes, then strong-scaled).
//
// Paper shape: the energy benefit first rises with scale, then falls once
// the shrinking per-process problem becomes cache-resident (an interior
// sweet spot); the recovery cost falls with scale because per-process
// recovery gets cheaper; P_CK+P_SD stays the most energy-efficient.
#include "bench/report.hpp"
#include "sim/scaling.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  ScalingOptions opt;
  opt.process_counts = {100, 200, 400, 800, 1600, 3200};
  opt.base_dim = 640;
  opt.iterations = 4;
  bench::Report rep(
      argc, argv, "Figure 9: strong scaling, energy benefit vs recovery cost",
      "SC'13 Fig. 9", opt.platform);
  ScalingStudy study(opt);

  for (const auto scheme :
       {Strategy::kPartialChipkillNoEcc, Strategy::kPartialChipkillSecded,
        Strategy::kPartialSecdedNoEcc}) {
    std::printf("-- %s (baseline %s) --\n",
                std::string(spec(scheme).label).c_str(),
                std::string(spec(ScalingStudy::baseline_for(scheme)).label).c_str());
    bench::row({"processes", "benefit(kJ)", "recovery(kJ)", "errors",
                "MTTF(s)"});
    for (const auto& p : study.strong_scaling(scheme)) {
      bench::row({bench::fmt(p.processes, 0),
                  bench::fmt_sci(p.energy_benefit_kj),
                  bench::fmt_sci(p.recovery_cost_kj),
                  bench::fmt_sci(p.expected_errors),
                  bench::fmt_sci(p.mttf_hetero_seconds)});
      const std::string key = std::string(spec(scheme).label) + "@" +
                              bench::fmt(p.processes, 0);
      rep.scalar(key + ".benefit_kj", p.energy_benefit_kj);
      rep.scalar(key + ".recovery_kj", p.recovery_cost_kj);
      rep.scalar(key + ".expected_errors", p.expected_errors);
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: benefit peaks at an interior scale then declines; "
      "recovery cost shrinks as the per-process problem shrinks.\n");
  return 0;
}
