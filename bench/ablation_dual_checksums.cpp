// Ablation (Section 2.1): single vs dual ("sophisticated") checksum
// vectors for FT-DGEMM.
//
// The second weighted checksum row/column costs extra encode + verify work
// but upgrades the correction capability: two errors per column and
// row/column grid patterns become solvable. This harness measures both
// sides -- the overhead on clean runs and the survival rate under
// increasingly hostile random multi-error injections.
#include <chrono>

#include "abft/ft_dgemm.hpp"
#include "abft/ft_dgemm_dual.hpp"
#include "bench/report.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace {

using namespace abftecc;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Survival {
  int corrected = 0;
  int refused = 0;
  int silent_wrong = 0;
};

template <typename Ft, typename MakeBuffers>
Survival survive(std::size_t n, unsigned errors_per_trial, int trials,
                 MakeBuffers make) {
  Survival out;
  for (int t = 0; t < trials; ++t) {
    Rng rng(10 * errors_per_trial + t);
    Matrix a = Matrix::random(n, n, rng), b = Matrix::random(n, n, rng);
    auto bufs = make();
    Ft ft(a.view(), b.view(), bufs.buffers());
    if (ft.run() != abft::FtStatus::kOk) continue;
    Matrix ref(n, n);
    linalg::gemm(1.0, a.view(), b.view(), 0.0, ref.view());
    for (unsigned e = 0; e < errors_per_trial; ++e)
      bufs.cf(rng.below(n), rng.below(n)) +=
          rng.uniform(1.0, 40.0) * (rng.below(2) ? 1 : -1);
    const auto st = ft.verify_and_correct();
    const bool ok = max_abs_diff(ft.result(), ref.view()) < 1e-6;
    if (st == abft::FtStatus::kUncorrectable)
      ++out.refused;
    else if (ok)
      ++out.corrected;
    else
      ++out.silent_wrong;
  }
  return out;
}

struct SingleBufs {
  Matrix ac, br, cf;
  explicit SingleBufs(std::size_t n)
      : ac(n + 1, n), br(n, n + 1), cf(n + 1, n + 1) {}
  abft::FtDgemm::Buffers buffers() {
    return {ac.view(), br.view(), cf.view()};
  }
};

struct DualBufs {
  Matrix ac, br, cf;
  explicit DualBufs(std::size_t n)
      : ac(n + 2, n), br(n, n + 2), cf(n + 2, n + 2) {}
  abft::FtDgemmDual::Buffers buffers() {
    return {ac.view(), br.view(), cf.view()};
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace abftecc;
  bench::Report rep(argc, argv,
                    "Ablation: single vs dual checksum vectors (FT-DGEMM)",
                    "SC'13 Sec. 2.1 'sophisticated checksum vectors'");
  const std::size_t n = 64;

  // Clean-run overhead.
  {
    Rng rng(1);
    Matrix a = Matrix::random(n * 4, n * 4, rng);
    Matrix b = Matrix::random(n * 4, n * 4, rng);
    double t_single = 0, t_dual = 0;
    // r == 0 is a discarded warm-up round (first-touch page faults and
    // cache warm-up would otherwise penalize whichever variant runs first).
    for (int r = 0; r < 4; ++r) {
      const bool warmup = r == 0;
      Matrix ac1(4 * n + 1, 4 * n), br1(4 * n, 4 * n + 1),
          cf1(4 * n + 1, 4 * n + 1);
      abft::FtDgemm single(a.view(), b.view(),
                           {ac1.view(), br1.view(), cf1.view()});
      double t0 = now_seconds();
      single.run();
      if (!warmup) t_single += now_seconds() - t0;
      Matrix ac2(4 * n + 2, 4 * n), br2(4 * n, 4 * n + 2),
          cf2(4 * n + 2, 4 * n + 2);
      abft::FtDgemmDual dual(a.view(), b.view(),
                             {ac2.view(), br2.view(), cf2.view()});
      t0 = now_seconds();
      dual.run();
      if (!warmup) t_dual += now_seconds() - t0;
    }
    std::printf("clean-run time at n=%zu: single %.3fs, dual %.3fs (+%s)\n\n",
                4 * n, t_single, t_dual,
                bench::fmt_pct(t_dual / t_single - 1.0).c_str());
    rep.scalar("clean_run_dual_overhead", t_dual / t_single - 1.0);
  }

  bench::row({"errors", "scheme", "corrected", "refused", "silent-wrong"});
  for (const unsigned errors : {1u, 2u, 3u, 4u, 6u}) {
    const auto s = survive<abft::FtDgemm>(
        n, errors, 40, [&] { return SingleBufs(n); });
    const auto d = survive<abft::FtDgemmDual>(
        n, errors, 40, [&] { return DualBufs(n); });
    bench::row({std::to_string(errors), "single", std::to_string(s.corrected),
                std::to_string(s.refused), std::to_string(s.silent_wrong)});
    bench::row({"", "dual", std::to_string(d.corrected),
                std::to_string(d.refused), std::to_string(d.silent_wrong)});
    const std::string key = "errors" + std::to_string(errors);
    rep.scalar(key + ".single_corrected", s.corrected);
    rep.scalar(key + ".single_silent_wrong", s.silent_wrong);
    rep.scalar(key + ".dual_corrected", d.corrected);
    rep.scalar(key + ".dual_silent_wrong", d.silent_wrong);
  }
  std::printf(
      "\nexpected: dual corrects strictly more multi-error trials at "
      "comparable clean-run cost; NEITHER scheme reports a silently wrong "
      "result (refusal is the safe failure mode).\n");
  return 0;
}
