// Table 4: classification of accesses by ABFT protection.
//
// The paper profiles references and separately counts accesses to blocks
// with and without ABFT protection; the ratio explains why the partial-ECC
// strategies behave as they do in Figure 5 (a kernel whose traffic is
// almost entirely ABFT-protected is insensitive to the scheme chosen for
// the rest).
//
// Paper ratios: FT-DGEMM 654, FT-Cholesky 14, FT-CG 3, FT-HPL 20.
#include "bench/report.hpp"

int main(int argc, char** argv) {
  using namespace abftecc;
  using namespace abftecc::sim;
  PlatformOptions opt;
  opt.strategy = Strategy::kWholeChipkill;
  bench::Report rep(argc, argv,
                    "Table 4: accesses with/without ABFT protection",
                    "SC'13 Table 4", opt);

  bench::row({"kernel", "#ref w/ ABFT", "#ref w/o", "ratio", "LLC-miss w/",
              "LLC-miss w/o"}, 16);
  const struct {
    Kernel kernel;
    double paper_ratio;
  } rows[] = {{Kernel::kDgemm, 654},
              {Kernel::kCholesky, 14},
              {Kernel::kCg, 3},
              {Kernel::kHpl, 20}};
  for (const auto& r : rows) {
    const RunMetrics m = run_kernel(r.kernel, opt);
    // FT-Cholesky and FT-HPL touch only ABFT-protected structures at this
    // instrumentation level (the paper's nonzero denominators come from
    // OS/runtime traffic outside our taps): report "inf" honestly.
    const std::string ratio =
        m.refs_other == 0 ? "inf"
                          : bench::fmt(static_cast<double>(m.refs_abft) /
                                           static_cast<double>(m.refs_other),
                                       1);
    bench::row({std::string(kernel_name(r.kernel)),
                std::to_string(m.refs_abft), std::to_string(m.refs_other),
                ratio, std::to_string(m.sys.demand_misses_abft),
                std::to_string(m.sys.demand_misses_other)},
               16);
    rep.add_run(std::string(kernel_name(r.kernel)), m);
    if (m.refs_other != 0)
      rep.scalar(std::string(kernel_name(r.kernel)) + ".abft_ref_ratio",
                 static_cast<double>(m.refs_abft) /
                     static_cast<double>(m.refs_other));
  }
  std::printf(
      "\npaper shape: FT-DGEMM's traffic is overwhelmingly ABFT-protected "
      "(largest ratio); FT-CG's ratio is the smallest.\n");
  return 0;
}
