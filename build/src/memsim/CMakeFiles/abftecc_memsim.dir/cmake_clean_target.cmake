file(REMOVE_RECURSE
  "libabftecc_memsim.a"
)
