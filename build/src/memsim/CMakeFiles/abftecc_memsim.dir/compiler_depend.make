# Empty compiler generated dependencies file for abftecc_memsim.
# This may be replaced when dependencies are built.
