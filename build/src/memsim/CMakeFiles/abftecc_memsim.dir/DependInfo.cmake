
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/address_map.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/address_map.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/address_map.cpp.o.d"
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/config.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/config.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/config.cpp.o.d"
  "/root/repo/src/memsim/dram.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/dram.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/dram.cpp.o.d"
  "/root/repo/src/memsim/memory_controller.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/memory_controller.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/memory_controller.cpp.o.d"
  "/root/repo/src/memsim/system.cpp" "src/memsim/CMakeFiles/abftecc_memsim.dir/system.cpp.o" "gcc" "src/memsim/CMakeFiles/abftecc_memsim.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/abftecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/abftecc_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
