file(REMOVE_RECURSE
  "CMakeFiles/abftecc_memsim.dir/address_map.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/address_map.cpp.o.d"
  "CMakeFiles/abftecc_memsim.dir/cache.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/abftecc_memsim.dir/config.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/config.cpp.o.d"
  "CMakeFiles/abftecc_memsim.dir/dram.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/dram.cpp.o.d"
  "CMakeFiles/abftecc_memsim.dir/memory_controller.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/memory_controller.cpp.o.d"
  "CMakeFiles/abftecc_memsim.dir/system.cpp.o"
  "CMakeFiles/abftecc_memsim.dir/system.cpp.o.d"
  "libabftecc_memsim.a"
  "libabftecc_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
