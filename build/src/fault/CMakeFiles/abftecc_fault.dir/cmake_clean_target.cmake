file(REMOVE_RECURSE
  "libabftecc_fault.a"
)
