file(REMOVE_RECURSE
  "CMakeFiles/abftecc_fault.dir/injector.cpp.o"
  "CMakeFiles/abftecc_fault.dir/injector.cpp.o.d"
  "CMakeFiles/abftecc_fault.dir/model.cpp.o"
  "CMakeFiles/abftecc_fault.dir/model.cpp.o.d"
  "libabftecc_fault.a"
  "libabftecc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
