# Empty compiler generated dependencies file for abftecc_fault.
# This may be replaced when dependencies are built.
