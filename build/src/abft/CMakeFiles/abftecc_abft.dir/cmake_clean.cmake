file(REMOVE_RECURSE
  "CMakeFiles/abftecc_abft.dir/checksum.cpp.o"
  "CMakeFiles/abftecc_abft.dir/checksum.cpp.o.d"
  "CMakeFiles/abftecc_abft.dir/runtime.cpp.o"
  "CMakeFiles/abftecc_abft.dir/runtime.cpp.o.d"
  "libabftecc_abft.a"
  "libabftecc_abft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
