file(REMOVE_RECURSE
  "libabftecc_abft.a"
)
