# Empty compiler generated dependencies file for abftecc_abft.
# This may be replaced when dependencies are built.
