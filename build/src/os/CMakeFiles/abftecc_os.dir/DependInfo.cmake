
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/os.cpp" "src/os/CMakeFiles/abftecc_os.dir/os.cpp.o" "gcc" "src/os/CMakeFiles/abftecc_os.dir/os.cpp.o.d"
  "/root/repo/src/os/page_allocator.cpp" "src/os/CMakeFiles/abftecc_os.dir/page_allocator.cpp.o" "gcc" "src/os/CMakeFiles/abftecc_os.dir/page_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/abftecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/abftecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/abftecc_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
