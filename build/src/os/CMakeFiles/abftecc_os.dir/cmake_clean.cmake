file(REMOVE_RECURSE
  "CMakeFiles/abftecc_os.dir/os.cpp.o"
  "CMakeFiles/abftecc_os.dir/os.cpp.o.d"
  "CMakeFiles/abftecc_os.dir/page_allocator.cpp.o"
  "CMakeFiles/abftecc_os.dir/page_allocator.cpp.o.d"
  "libabftecc_os.a"
  "libabftecc_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
