# Empty dependencies file for abftecc_os.
# This may be replaced when dependencies are built.
