file(REMOVE_RECURSE
  "libabftecc_os.a"
)
