file(REMOVE_RECURSE
  "libabftecc_linalg.a"
)
