# Empty dependencies file for abftecc_linalg.
# This may be replaced when dependencies are built.
