file(REMOVE_RECURSE
  "CMakeFiles/abftecc_linalg.dir/generate.cpp.o"
  "CMakeFiles/abftecc_linalg.dir/generate.cpp.o.d"
  "libabftecc_linalg.a"
  "libabftecc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
