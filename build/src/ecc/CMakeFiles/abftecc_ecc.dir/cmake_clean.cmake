file(REMOVE_RECURSE
  "CMakeFiles/abftecc_ecc.dir/codec.cpp.o"
  "CMakeFiles/abftecc_ecc.dir/codec.cpp.o.d"
  "CMakeFiles/abftecc_ecc.dir/secded.cpp.o"
  "CMakeFiles/abftecc_ecc.dir/secded.cpp.o.d"
  "libabftecc_ecc.a"
  "libabftecc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
