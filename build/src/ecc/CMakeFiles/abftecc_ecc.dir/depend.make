# Empty dependencies file for abftecc_ecc.
# This may be replaced when dependencies are built.
