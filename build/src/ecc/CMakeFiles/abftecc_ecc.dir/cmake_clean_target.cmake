file(REMOVE_RECURSE
  "libabftecc_ecc.a"
)
