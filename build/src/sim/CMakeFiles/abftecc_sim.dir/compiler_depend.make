# Empty compiler generated dependencies file for abftecc_sim.
# This may be replaced when dependencies are built.
