file(REMOVE_RECURSE
  "CMakeFiles/abftecc_sim.dir/platform.cpp.o"
  "CMakeFiles/abftecc_sim.dir/platform.cpp.o.d"
  "CMakeFiles/abftecc_sim.dir/scaling.cpp.o"
  "CMakeFiles/abftecc_sim.dir/scaling.cpp.o.d"
  "libabftecc_sim.a"
  "libabftecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
