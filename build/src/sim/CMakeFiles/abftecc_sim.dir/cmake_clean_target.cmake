file(REMOVE_RECURSE
  "libabftecc_sim.a"
)
