file(REMOVE_RECURSE
  "CMakeFiles/abftecc_common.dir/matrix.cpp.o"
  "CMakeFiles/abftecc_common.dir/matrix.cpp.o.d"
  "libabftecc_common.a"
  "libabftecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abftecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
