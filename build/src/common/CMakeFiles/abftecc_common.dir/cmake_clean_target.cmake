file(REMOVE_RECURSE
  "libabftecc_common.a"
)
