# Empty compiler generated dependencies file for abftecc_common.
# This may be replaced when dependencies are built.
