# Empty dependencies file for test_abft_dgemm_dual.
# This may be replaced when dependencies are built.
