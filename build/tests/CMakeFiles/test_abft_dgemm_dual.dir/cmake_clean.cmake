file(REMOVE_RECURSE
  "CMakeFiles/test_abft_dgemm_dual.dir/test_abft_dgemm_dual.cpp.o"
  "CMakeFiles/test_abft_dgemm_dual.dir/test_abft_dgemm_dual.cpp.o.d"
  "test_abft_dgemm_dual"
  "test_abft_dgemm_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_dgemm_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
