
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ecc_rs.cpp" "tests/CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cpp.o" "gcc" "tests/CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abftecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/abftecc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/abft/CMakeFiles/abftecc_abft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/abftecc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/abftecc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/abftecc_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/abftecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/abftecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
