file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cpp.o"
  "CMakeFiles/test_ecc_rs.dir/test_ecc_rs.cpp.o.d"
  "test_ecc_rs"
  "test_ecc_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
