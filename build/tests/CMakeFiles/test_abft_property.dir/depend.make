# Empty dependencies file for test_abft_property.
# This may be replaced when dependencies are built.
