file(REMOVE_RECURSE
  "CMakeFiles/test_abft_property.dir/test_abft_property.cpp.o"
  "CMakeFiles/test_abft_property.dir/test_abft_property.cpp.o.d"
  "test_abft_property"
  "test_abft_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
