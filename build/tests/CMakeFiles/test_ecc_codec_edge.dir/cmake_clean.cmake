file(REMOVE_RECURSE
  "CMakeFiles/test_ecc_codec_edge.dir/test_ecc_codec_edge.cpp.o"
  "CMakeFiles/test_ecc_codec_edge.dir/test_ecc_codec_edge.cpp.o.d"
  "test_ecc_codec_edge"
  "test_ecc_codec_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc_codec_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
