# Empty compiler generated dependencies file for test_ecc_codec_edge.
# This may be replaced when dependencies are built.
