file(REMOVE_RECURSE
  "CMakeFiles/test_os_retirement.dir/test_os_retirement.cpp.o"
  "CMakeFiles/test_os_retirement.dir/test_os_retirement.cpp.o.d"
  "test_os_retirement"
  "test_os_retirement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_retirement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
