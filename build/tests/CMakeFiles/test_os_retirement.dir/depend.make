# Empty dependencies file for test_os_retirement.
# This may be replaced when dependencies are built.
