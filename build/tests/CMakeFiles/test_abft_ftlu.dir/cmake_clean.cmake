file(REMOVE_RECURSE
  "CMakeFiles/test_abft_ftlu.dir/test_abft_ftlu.cpp.o"
  "CMakeFiles/test_abft_ftlu.dir/test_abft_ftlu.cpp.o.d"
  "test_abft_ftlu"
  "test_abft_ftlu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_ftlu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
