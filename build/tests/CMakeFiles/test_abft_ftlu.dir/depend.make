# Empty dependencies file for test_abft_ftlu.
# This may be replaced when dependencies are built.
