# Empty dependencies file for test_abft_cg.
# This may be replaced when dependencies are built.
