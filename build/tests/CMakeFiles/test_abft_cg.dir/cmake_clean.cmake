file(REMOVE_RECURSE
  "CMakeFiles/test_abft_cg.dir/test_abft_cg.cpp.o"
  "CMakeFiles/test_abft_cg.dir/test_abft_cg.cpp.o.d"
  "test_abft_cg"
  "test_abft_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
