# Empty compiler generated dependencies file for test_abft_runtime.
# This may be replaced when dependencies are built.
