file(REMOVE_RECURSE
  "CMakeFiles/test_abft_runtime.dir/test_abft_runtime.cpp.o"
  "CMakeFiles/test_abft_runtime.dir/test_abft_runtime.cpp.o.d"
  "test_abft_runtime"
  "test_abft_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
