# Empty compiler generated dependencies file for test_abft_dgemm.
# This may be replaced when dependencies are built.
