file(REMOVE_RECURSE
  "CMakeFiles/test_abft_dgemm.dir/test_abft_dgemm.cpp.o"
  "CMakeFiles/test_abft_dgemm.dir/test_abft_dgemm.cpp.o.d"
  "test_abft_dgemm"
  "test_abft_dgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
