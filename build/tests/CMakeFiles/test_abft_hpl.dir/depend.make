# Empty dependencies file for test_abft_hpl.
# This may be replaced when dependencies are built.
