file(REMOVE_RECURSE
  "CMakeFiles/test_abft_hpl.dir/test_abft_hpl.cpp.o"
  "CMakeFiles/test_abft_hpl.dir/test_abft_hpl.cpp.o.d"
  "test_abft_hpl"
  "test_abft_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
