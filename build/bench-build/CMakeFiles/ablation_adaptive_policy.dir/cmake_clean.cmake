file(REMOVE_RECURSE
  "../bench/ablation_adaptive_policy"
  "../bench/ablation_adaptive_policy.pdb"
  "CMakeFiles/ablation_adaptive_policy.dir/ablation_adaptive_policy.cpp.o"
  "CMakeFiles/ablation_adaptive_policy.dir/ablation_adaptive_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
