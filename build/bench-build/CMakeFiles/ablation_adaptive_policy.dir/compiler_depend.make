# Empty compiler generated dependencies file for ablation_adaptive_policy.
# This may be replaced when dependencies are built.
