# Empty compiler generated dependencies file for table1_simplified_verification.
# This may be replaced when dependencies are built.
