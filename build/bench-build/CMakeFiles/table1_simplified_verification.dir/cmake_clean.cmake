file(REMOVE_RECURSE
  "../bench/table1_simplified_verification"
  "../bench/table1_simplified_verification.pdb"
  "CMakeFiles/table1_simplified_verification.dir/table1_simplified_verification.cpp.o"
  "CMakeFiles/table1_simplified_verification.dir/table1_simplified_verification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_simplified_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
