file(REMOVE_RECURSE
  "../bench/ablation_dual_checksums"
  "../bench/ablation_dual_checksums.pdb"
  "CMakeFiles/ablation_dual_checksums.dir/ablation_dual_checksums.cpp.o"
  "CMakeFiles/ablation_dual_checksums.dir/ablation_dual_checksums.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dual_checksums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
