# Empty dependencies file for ablation_dual_checksums.
# This may be replaced when dependencies are built.
