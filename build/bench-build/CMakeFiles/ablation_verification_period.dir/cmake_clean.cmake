file(REMOVE_RECURSE
  "../bench/ablation_verification_period"
  "../bench/ablation_verification_period.pdb"
  "CMakeFiles/ablation_verification_period.dir/ablation_verification_period.cpp.o"
  "CMakeFiles/ablation_verification_period.dir/ablation_verification_period.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_verification_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
