# Empty compiler generated dependencies file for ablation_verification_period.
# This may be replaced when dependencies are built.
