file(REMOVE_RECURSE
  "../bench/ablation_row_buffer"
  "../bench/ablation_row_buffer.pdb"
  "CMakeFiles/ablation_row_buffer.dir/ablation_row_buffer.cpp.o"
  "CMakeFiles/ablation_row_buffer.dir/ablation_row_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_row_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
