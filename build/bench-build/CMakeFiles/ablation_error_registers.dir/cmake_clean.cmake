file(REMOVE_RECURSE
  "../bench/ablation_error_registers"
  "../bench/ablation_error_registers.pdb"
  "CMakeFiles/ablation_error_registers.dir/ablation_error_registers.cpp.o"
  "CMakeFiles/ablation_error_registers.dir/ablation_error_registers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
