file(REMOVE_RECURSE
  "../bench/cases_end_to_end"
  "../bench/cases_end_to_end.pdb"
  "CMakeFiles/cases_end_to_end.dir/cases_end_to_end.cpp.o"
  "CMakeFiles/cases_end_to_end.dir/cases_end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cases_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
