# Empty dependencies file for cases_end_to_end.
# This may be replaced when dependencies are built.
