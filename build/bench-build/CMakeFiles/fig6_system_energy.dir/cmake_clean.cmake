file(REMOVE_RECURSE
  "../bench/fig6_system_energy"
  "../bench/fig6_system_energy.pdb"
  "CMakeFiles/fig6_system_energy.dir/fig6_system_energy.cpp.o"
  "CMakeFiles/fig6_system_energy.dir/fig6_system_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_system_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
