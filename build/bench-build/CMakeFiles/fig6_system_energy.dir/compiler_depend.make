# Empty compiler generated dependencies file for fig6_system_energy.
# This may be replaced when dependencies are built.
