# Empty dependencies file for fig8_weak_scaling.
# This may be replaced when dependencies are built.
