file(REMOVE_RECURSE
  "../bench/fig3_overhead_breakdown"
  "../bench/fig3_overhead_breakdown.pdb"
  "CMakeFiles/fig3_overhead_breakdown.dir/fig3_overhead_breakdown.cpp.o"
  "CMakeFiles/fig3_overhead_breakdown.dir/fig3_overhead_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
