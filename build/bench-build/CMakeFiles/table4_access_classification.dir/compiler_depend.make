# Empty compiler generated dependencies file for table4_access_classification.
# This may be replaced when dependencies are built.
