file(REMOVE_RECURSE
  "../bench/table4_access_classification"
  "../bench/table4_access_classification.pdb"
  "CMakeFiles/table4_access_classification.dir/table4_access_classification.cpp.o"
  "CMakeFiles/table4_access_classification.dir/table4_access_classification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_access_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
