# Empty compiler generated dependencies file for fig10_dgms_comparison.
# This may be replaced when dependencies are built.
