# Empty compiler generated dependencies file for fault_model_thresholds.
# This may be replaced when dependencies are built.
