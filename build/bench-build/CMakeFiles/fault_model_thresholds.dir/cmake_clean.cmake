file(REMOVE_RECURSE
  "../bench/fault_model_thresholds"
  "../bench/fault_model_thresholds.pdb"
  "CMakeFiles/fault_model_thresholds.dir/fault_model_thresholds.cpp.o"
  "CMakeFiles/fault_model_thresholds.dir/fault_model_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_model_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
