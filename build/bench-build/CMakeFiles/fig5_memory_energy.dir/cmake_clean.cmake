file(REMOVE_RECURSE
  "../bench/fig5_memory_energy"
  "../bench/fig5_memory_energy.pdb"
  "CMakeFiles/fig5_memory_energy.dir/fig5_memory_energy.cpp.o"
  "CMakeFiles/fig5_memory_energy.dir/fig5_memory_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memory_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
