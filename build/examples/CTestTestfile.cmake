# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cooperative_recovery]=] "/root/repo/build/examples/cooperative_recovery")
set_tests_properties([=[example_cooperative_recovery]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_ft_solver]=] "/root/repo/build/examples/ft_solver")
set_tests_properties([=[example_ft_solver]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_ecc_explorer]=] "/root/repo/build/examples/ecc_explorer")
set_tests_properties([=[example_ecc_explorer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_scaling_advisor]=] "/root/repo/build/examples/scaling_advisor")
set_tests_properties([=[example_scaling_advisor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_simulate]=] "/root/repo/build/examples/simulate" "dgemm" "p_ck" "128")
set_tests_properties([=[example_simulate]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
