file(REMOVE_RECURSE
  "CMakeFiles/cooperative_recovery.dir/cooperative_recovery.cpp.o"
  "CMakeFiles/cooperative_recovery.dir/cooperative_recovery.cpp.o.d"
  "cooperative_recovery"
  "cooperative_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
