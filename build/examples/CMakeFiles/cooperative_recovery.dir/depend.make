# Empty dependencies file for cooperative_recovery.
# This may be replaced when dependencies are built.
