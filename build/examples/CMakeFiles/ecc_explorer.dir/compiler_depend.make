# Empty compiler generated dependencies file for ecc_explorer.
# This may be replaced when dependencies are built.
