file(REMOVE_RECURSE
  "CMakeFiles/ecc_explorer.dir/ecc_explorer.cpp.o"
  "CMakeFiles/ecc_explorer.dir/ecc_explorer.cpp.o.d"
  "ecc_explorer"
  "ecc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
