# Empty compiler generated dependencies file for ft_solver.
# This may be replaced when dependencies are built.
