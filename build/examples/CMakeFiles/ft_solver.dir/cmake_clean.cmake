file(REMOVE_RECURSE
  "CMakeFiles/ft_solver.dir/ft_solver.cpp.o"
  "CMakeFiles/ft_solver.dir/ft_solver.cpp.o.d"
  "ft_solver"
  "ft_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
